"""Structure-of-arrays VC-state view for batched routing decisions.

The vector engine (:mod:`repro.sim.vector`) keeps the whole network's
output-port VC state in a handful of dense numpy arrays indexed by
*global port id* ``g = node * NUM_PORTS + direction`` and VC index.
:class:`VcStateArrays` bundles those arrays (plus the few scalar
parameters routing decisions depend on) into the view consumed by
:meth:`repro.routing.base.RoutingAlgorithm.candidate_mask` — the batched
counterpart of the scalar per-packet ``vc_requests_at``.

The arrays are *live views*: the engine mutates them in place and the
container never copies.  For oracle tests, :meth:`VcStateArrays.capture`
builds a snapshot from scalar :class:`~repro.router.output.OutputPort`
objects so batched and scalar request generation can be compared on
identical state.

Semantics of each array (all shaped ``[G, V]``):

``busy``
    VC is allocated *or* draining — exactly the complement of the scalar
    ``grantable``.  Includes the escape VC.
``fresh``
    VC was released since the last allocation round (the scalar
    ``fresh_released`` set).  A fresh VC is always grantable.
``owner``
    Destination of the VC's current (or, while fresh, most recent)
    owner packet; ``-1`` before the first allocation.  Deliberately
    stale after release, matching the scalar owner register.
``adaptive``
    VCs a non-escape request may target: everything except the escape
    VC at non-LOCAL ports (ejection ports reserve no escape VC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.topology.ports import NUM_PORTS, Direction

if TYPE_CHECKING:
    from repro.router.output import OutputPort
    from repro.topology.base import Topology
    from repro.topology.mesh import Mesh2D


@dataclass
class VcStateArrays:
    """Dense ``[global port, vc]`` view of every output port's VC state."""

    width: int
    height: int
    num_vcs: int
    #: Congestion threshold in VCs (already scaled by ``num_vcs``).
    congestion_threshold: int
    footprint_vc_limit: int | None
    #: The reserved escape VC index, or ``None`` for non-Duato algorithms.
    escape_vc: int | None
    busy: np.ndarray
    fresh: np.ndarray
    owner: np.ndarray
    adaptive: np.ndarray
    #: The engine's shared topology instance, when the builder has one
    #: (the vector engine is mesh-only, so this is always a mesh there).
    #: :meth:`mesh` lazily builds one otherwise.
    topology: "Topology | None" = None
    #: Lazily built ``[src * num_nodes + dst]`` DOR-direction table.
    _dor_table: "np.ndarray | None" = None

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def mesh(self) -> "Topology":
        """The shared topology instance (built once if not injected)."""
        if self.topology is None:
            from repro.topology.mesh import Mesh2D

            self.topology = Mesh2D(self.width, self.height)
        return self.topology

    # ------------------------------------------------------------------
    @classmethod
    def empty(
        cls,
        width: int,
        height: int,
        num_vcs: int,
        *,
        congestion_threshold: int,
        footprint_vc_limit: int | None,
        escape_vc: int | None,
    ) -> "VcStateArrays":
        """A fully idle network: nothing busy, nothing fresh, no owners."""
        size = width * height * NUM_PORTS
        adaptive = np.ones((size, num_vcs), dtype=bool)
        if escape_vc is not None:
            non_local = np.arange(size) % NUM_PORTS != int(Direction.LOCAL)
            adaptive[non_local, escape_vc] = False
        return cls(
            width=width,
            height=height,
            num_vcs=num_vcs,
            congestion_threshold=congestion_threshold,
            footprint_vc_limit=footprint_vc_limit,
            escape_vc=escape_vc,
            busy=np.zeros((size, num_vcs), dtype=bool),
            fresh=np.zeros((size, num_vcs), dtype=bool),
            owner=np.full((size, num_vcs), -1, dtype=np.int32),
            adaptive=adaptive,
        )

    @classmethod
    def capture(
        cls,
        mesh: "Mesh2D",
        num_vcs: int,
        ports_by_node: "list[Mapping[Direction, OutputPort]]",
        *,
        congestion_threshold: int,
        footprint_vc_limit: int | None,
        escape_vc: int | None,
    ) -> "VcStateArrays":
        """Snapshot scalar :class:`OutputPort` state (oracle tests)."""
        state = cls.empty(
            mesh.width,
            mesh.height,
            num_vcs,
            congestion_threshold=congestion_threshold,
            footprint_vc_limit=footprint_vc_limit,
            escape_vc=escape_vc,
        )
        state.topology = mesh
        for node, ports in enumerate(ports_by_node):
            for direction, port in ports.items():
                g = node * NUM_PORTS + int(direction)
                for v in range(num_vcs):
                    state.busy[g, v] = port.allocated[v] or port._draining[v]
                    state.fresh[g, v] = v in port.fresh_released
                    owner = port.owner_dst[v]
                    if owner is not None:
                        state.owner[g, v] = owner
        return state

    # ------------------------------------------------------------------
    def dor_directions(
        self, current: np.ndarray, destination: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`Mesh2D.dor_direction` over node-id arrays.

        X is fully resolved before Y, ``LOCAL`` at the destination —
        bit-identical to the scalar mesh query.  For small meshes the
        full ``[src, dst]`` table is built once and subsequent calls are
        a single gather (the per-cycle batches are tiny, so the ~15
        numpy calls of the direct computation would dominate).
        """
        n = self.num_nodes
        if n * n <= (1 << 20):
            table = self._dor_table
            if table is None:
                nodes = np.arange(n)
                table = self._compute_dor(
                    np.repeat(nodes, n), np.tile(nodes, n)
                )
                self._dor_table = table
            return table[current * n + destination]
        return self._compute_dor(current, destination)

    def _compute_dor(
        self, current: np.ndarray, destination: np.ndarray
    ) -> np.ndarray:
        width = self.width
        cx = current % width
        cy = current // width
        dx = destination % width
        dy = destination // width
        out = np.full(current.shape, int(Direction.LOCAL), dtype=np.int64)
        # Y first, then overwrite with X so the X offset wins when both
        # remain (dimension order).
        out[dy < cy] = int(Direction.NORTH)
        out[dy > cy] = int(Direction.SOUTH)
        out[dx < cx] = int(Direction.WEST)
        out[dx > cx] = int(Direction.EAST)
        return out


#: ``_WINNER_TABLES[V]`` is the flattened ``[mask * V + ptr]`` lookup of
#: the first set bit of ``mask`` at or after ``ptr`` cyclically (``-1``
#: when ``mask == 0``) — the round-robin arbiter scan as one gather.
_WINNER_TABLES: "dict[int, np.ndarray]" = {}


def _winner_table(num_vcs: int) -> np.ndarray:
    table = _WINNER_TABLES.get(num_vcs)
    if table is None:
        table = np.full((1 << num_vcs) * num_vcs, -1, dtype=np.int64)
        for mask in range(1 << num_vcs):
            for ptr in range(num_vcs):
                for k in range(num_vcs):
                    v = (ptr + k) % num_vcs
                    if (mask >> v) & 1:
                        table[mask * num_vcs + ptr] = v
                        break
        _WINNER_TABLES[num_vcs] = table
    return table


def switch_grants(
    ready: np.ndarray,
    out_flat: np.ndarray,
    credits: np.ndarray,
    port_open: np.ndarray,
    arb_ptr: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """Batched switch allocation: first eligible VC per input port.

    Vectorized replica of the scalar router's ``_pick_sa_winner`` scan,
    evaluated for every input port at once against a start-of-stage
    snapshot: an input VC is *eligible* when it is ready (``ready`` —
    buffered flit whose packet holds an output VC), its granted output
    VC has a downstream credit, and the granted output port can still
    accept a flit this cycle (``port_open``, the scalar
    ``accept_capacity() > 0``).  Per input port the winner is the first
    eligible VC at or after the port's round-robin pointer, exactly the
    scalar rotated-mask scan.

    Shapes (``G`` input ports, ``V`` VCs per port): ``ready`` bool
    ``[G, V]``; ``out_flat`` int64 ``[G * V]`` holding the flat granted
    output VC id ``g_out * V + v_out`` (or ``-1`` when none, only read
    where ``ready``); ``credits`` int64 ``[G_out * V]``; ``port_open``
    bool ``[G_out]``; ``arb_ptr`` int64 ``[G]``.

    Returns ``(gs, vs)``: granting input ports (ascending) and their
    winning VC index.  The snapshot ignores same-cycle capacity
    consumption, so a multi-granted output port can exceed its accept
    capacity — callers must detect that and fall back to the scalar
    scan for the affected node (the vector engine's conflict fallback).
    """
    num_vcs = ready.shape[1]
    safe = np.maximum(out_flat, 0)
    if num_vcs & (num_vcs - 1) == 0:
        out_port = safe >> (num_vcs.bit_length() - 1)
    else:
        out_port = safe // num_vcs
    ok = (credits[safe] > 0) & port_open[out_port]
    elig = ready & ok.reshape(ready.shape)
    if num_vcs <= 8:
        # Pack each port's eligibility into a bitmask and resolve the
        # rotated scan with one precomputed-table gather.
        masks = np.packbits(elig, axis=1, bitorder="little")[:, 0]
        # uint8 masks would wrap at ``* num_vcs``; promote first.
        win = _winner_table(num_vcs)[
            masks.astype(np.int64) * num_vcs + arb_ptr
        ]
        gs = np.flatnonzero(win >= 0)
        return gs, win[gs]
    # Rank each VC by its distance from the pointer; the per-port winner
    # is the minimum-rank eligible VC (rank V == ineligible sentinel).
    rank = (np.arange(num_vcs) - arb_ptr[:, None]) % num_vcs
    rank[~elig] = num_vcs
    rmin = rank.min(axis=1)
    gs = np.flatnonzero(rmin < num_vcs)
    vs = (rmin[gs] + arb_ptr[gs]) % num_vcs
    return gs, vs


@dataclass
class SwitchStateArrays:
    """Dense snapshot of scalar per-router switch-allocation state.

    The oracle-test counterpart of :class:`VcStateArrays` for stage 5:
    :meth:`capture` flattens scalar :class:`~repro.router.router.Router`
    input-VC/output-port state into exactly the arrays
    :func:`switch_grants` consumes, so batched grants can be compared
    against ``Router._pick_sa_winner`` on identical state.
    """

    num_vcs: int
    ready: np.ndarray
    out_flat: np.ndarray
    credits: np.ndarray
    port_open: np.ndarray
    arb_ptr: np.ndarray

    @classmethod
    def capture(cls, routers, num_vcs: int) -> "SwitchStateArrays":
        """Snapshot ``routers`` (ascending node order, one per node)."""
        from repro.router.vcstate import VcState

        size = len(routers) * NUM_PORTS
        ready = np.zeros((size, num_vcs), dtype=bool)
        out_flat = np.full(size * num_vcs, -1, dtype=np.int64)
        credits = np.zeros(size * num_vcs, dtype=np.int64)
        port_open = np.zeros(size, dtype=bool)
        arb_ptr = np.zeros(size, dtype=np.int64)
        for router in routers:
            base = router.node * NUM_PORTS
            for direction, port in router.output_ports.items():
                g = base + int(direction)
                credits[g * num_vcs : (g + 1) * num_vcs] = port.credits
                port_open[g] = port.accept_capacity() > 0
            for direction, vcs in router.input_vcs.items():
                g = base + int(direction)
                arb_ptr[g] = router._vc_arbiters[direction]._pointer
                for v, ivc in enumerate(vcs):
                    if ivc.fifo and ivc.state is VcState.ACTIVE:
                        ready[g, v] = True
                        out_flat[g * num_vcs + v] = (
                            base + int(ivc.out_direction)
                        ) * num_vcs + ivc.out_vc
        return cls(
            num_vcs=num_vcs,
            ready=ready,
            out_flat=out_flat,
            credits=credits,
            port_open=port_open,
            arb_ptr=arb_ptr,
        )


