"""Virtual-channel request records produced by routing algorithms.

Algorithm 1 of the paper expresses routing decisions as
``ADD(P, v, priority)`` calls: the packet requests VC ``v`` at output port
``P`` with a given priority.  The VC allocator then grants free VCs to the
highest-priority requesters.  Requests targeting busy VCs are legal — they
express willingness to *wait* on that VC (the essence of Footprint's
"wait on footprint channels") and take effect on the cycle the VC frees,
because requests are recomputed every cycle.
"""

from __future__ import annotations

import enum
from typing import NamedTuple

from repro.topology.ports import Direction


class Priority(enum.IntEnum):
    """VC request priorities of Algorithm 1; larger is more urgent.

    In a hardware (BookSim-style) allocator, requests persist while their
    target VC is busy and the priorities decide who wins the VC at the
    instant it frees (e.g. a footprint follower's HIGH beats the LOW
    requests other packets hold on the same busy VC).  This simulator
    recomputes requests every cycle, so the same outcomes are reproduced
    by requesting *freshly freed* VCs at the priority the held request
    would have had — see :mod:`repro.routing.footprint`.
    """

    LOWEST = 0
    LOW = 1
    HIGH = 2
    HIGHEST = 3


class VcRequest(NamedTuple):
    """A request for one downstream VC at one output port.

    A NamedTuple rather than a dataclass: millions are constructed per
    run, on the simulator's hottest path.
    """

    direction: Direction
    vc: int
    priority: Priority

    def __repr__(self) -> str:
        return f"VcRequest({self.direction.name}, vc={self.vc}, {self.priority.name})"
