"""Dimension-order (XY) routing — the paper's deterministic baseline.

DOR resolves the X offset completely before the Y offset, which makes it
deadlock-free in a mesh without any dedicated escape resources, so all VCs
are usable by every packet and there is no VC regulation at all: the
algorithm requests every free downstream VC at equal priority.  This is
exactly the behaviour Fig. 2(a) of the paper illustrates — congestion
saturates all VCs of the single permitted path.

On a torus the wrap links reintroduce cyclic channel dependencies, so DOR
partitions the VCs into two dateline halves — VCs ``[0, n/2)`` carry
class-0 (pre-wrap) hops, VCs ``[n/2, n)`` class-1 hops — per
:meth:`~repro.topology.base.Topology.wrap_vc_class`.  On a mesh
(``num_vc_classes == 1``) the partition disappears and behaviour is
unchanged.
"""

from __future__ import annotations

from repro.routing.base import RouteContext, RoutingAlgorithm
from repro.routing.requests import Priority, VcRequest
from repro.topology.base import Topology
from repro.topology.ports import Direction


class DorRouting(RoutingAlgorithm):
    """Deterministic XY dimension-order routing."""

    name = "dor"
    uses_escape = False
    atomic_vc_reallocation = False

    def select_output(self, ctx: RouteContext) -> Direction:
        return ctx.mesh.dor_direction(ctx.current, ctx.destination)

    def vc_requests_at(
        self, ctx: RouteContext, direction: Direction
    ) -> list[VcRequest]:
        if direction is Direction.LOCAL:
            return self.eject_requests(ctx)
        view = ctx.outputs[direction]
        if ctx.mesh.num_vc_classes > 1:
            # Torus dateline: only the VCs of this hop's wrap class are
            # requestable, keeping each ring's dependency graph acyclic.
            cls = ctx.mesh.wrap_vc_class(
                ctx.current, ctx.destination, direction
            )
            half = ctx.num_vcs // 2
            lo, hi = (0, half) if cls == 0 else (half, ctx.num_vcs)
            return [
                VcRequest(direction, v, Priority.LOW)
                for v in view.idle_vcs()
                if lo <= v < hi
            ]
        # Any free VC at equal priority; busy VCs are re-requested (i.e.
        # become requestable) on the cycle they free.
        return [
            VcRequest(direction, v, Priority.LOW) for v in view.idle_vcs()
        ]

    def vc_class(self, num_vcs: int, vc: int) -> int | None:
        """The dateline half ``vc`` belongs to (0 = pre-wrap, 1 = post)."""
        return 0 if vc < num_vcs // 2 else 1

    def allowed_directions(
        self, mesh: Topology, current: int, destination: int, source: int
    ) -> list[Direction]:
        if current == destination:
            return [Direction.LOCAL]
        return [mesh.dor_direction(current, destination)]
