"""Dimension-order (XY) routing — the paper's deterministic baseline.

DOR resolves the X offset completely before the Y offset, which makes it
deadlock-free in a mesh without any dedicated escape resources, so all VCs
are usable by every packet and there is no VC regulation at all: the
algorithm requests every free downstream VC at equal priority.  This is
exactly the behaviour Fig. 2(a) of the paper illustrates — congestion
saturates all VCs of the single permitted path.
"""

from __future__ import annotations

from repro.routing.base import RouteContext, RoutingAlgorithm
from repro.routing.requests import Priority, VcRequest
from repro.topology.mesh import Mesh2D
from repro.topology.ports import Direction


class DorRouting(RoutingAlgorithm):
    """Deterministic XY dimension-order routing."""

    name = "dor"
    uses_escape = False
    atomic_vc_reallocation = False

    def select_output(self, ctx: RouteContext) -> Direction:
        return ctx.mesh.dor_direction(ctx.current, ctx.destination)

    def vc_requests_at(
        self, ctx: RouteContext, direction: Direction
    ) -> list[VcRequest]:
        if direction is Direction.LOCAL:
            return self.eject_requests(ctx)
        view = ctx.outputs[direction]
        # Any free VC at equal priority; busy VCs are re-requested (i.e.
        # become requestable) on the cycle they free.
        return [
            VcRequest(direction, v, Priority.LOW) for v in view.idle_vcs()
        ]

    def allowed_directions(
        self, mesh: Mesh2D, current: int, destination: int, source: int
    ) -> list[Direction]:
        if current == destination:
            return [Direction.LOCAL]
        return [mesh.dor_direction(current, destination)]
