"""Shared machinery for Duato-based minimal fully-adaptive routing.

Duato's theory provides deadlock freedom for fully-adaptive routing by
reserving one *escape* VC per physical channel (VC0 here) that is routed by
a deadlock-free base function (dimension-order).  A packet may wait on any
adaptive VC of any minimal port, but an escape request along the DOR port is
always present at the lowest priority so that a blocked packet eventually
drains through the acyclic escape subnetwork.

Both DBAR and Footprint derive from :class:`DuatoAdaptiveRouting`; they
differ only in the output-port selection policy and the VC request
priorities, which is exactly the delta the paper describes.

A consequence of Duato's protocol, noted in §4.2.1 of the paper, is atomic
VC reallocation: a downstream VC cannot be re-allocated until the credit for
the previous packet's tail flit has returned.  Both subclasses inherit
``atomic_vc_reallocation = True``.
"""

from __future__ import annotations

import abc

from repro.routing.base import RouteContext, RoutingAlgorithm
from repro.routing.requests import VcRequest
from repro.topology.base import Topology
from repro.topology.ports import Direction


class DuatoAdaptiveRouting(RoutingAlgorithm):
    """Base class for minimal fully-adaptive routing with escape VCs."""

    uses_escape = True
    atomic_vc_reallocation = True

    def select_output(self, ctx: RouteContext) -> Direction:
        if ctx.current == ctx.destination:
            return Direction.LOCAL
        candidates = ctx.mesh.minimal_directions(ctx.current, ctx.destination)
        if ctx.dead_ports:
            candidates = self.live_candidates(ctx, candidates)
        if len(candidates) == 1:
            return candidates[0]
        return self.select_port(ctx, candidates)

    def vc_requests_at(
        self, ctx: RouteContext, direction: Direction
    ) -> list[VcRequest]:
        if direction is Direction.LOCAL:
            return self.eject_requests(ctx)
        requests = self.vc_requests(ctx, direction)
        # The escape request is always present (Algorithm 1 line 45), on
        # the DOR port regardless of the committed adaptive port.
        requests.extend(self.escape_request(ctx))
        return requests

    @abc.abstractmethod
    def select_port(
        self, ctx: RouteContext, candidates: list[Direction]
    ) -> Direction:
        """Choose among the (two) minimal candidate ports."""

    @abc.abstractmethod
    def vc_requests(
        self, ctx: RouteContext, direction: Direction
    ) -> list[VcRequest]:
        """Adaptive-VC requests at the selected port."""

    def allowed_directions(
        self, mesh: Topology, current: int, destination: int, source: int
    ) -> list[Direction]:
        if current == destination:
            return [Direction.LOCAL]
        return mesh.minimal_directions(current, destination)
