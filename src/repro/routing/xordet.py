"""XORDET static HoL-blocking-aware VC mapping (Peñaranda et al., 2014).

XORDET avoids head-of-line blocking by assigning every destination a fixed
VC computed by XOR-folding the destination coordinates, so packets to
different destination classes never share a VC and a congested destination
only ever thickens *one* VC per link (the thin-branch congestion tree of
Fig. 2(c)).

This module provides:

* :func:`xordet_vc` — the pure destination→VC mapping;
* :class:`XordetOverlay` — a combinator that takes any base routing
  algorithm, keeps its output-*port* selection, and replaces its VC
  selection with the XORDET mapping.  This realizes the paper's
  ``DOR+XORDET``, ``Odd-Even+XORDET`` and ``DBAR+XORDET`` configurations
  ("DBAR+XORDET uses DBAR to select the output port but the VC selection is
  determined by XORDET").

For Duato-based algorithms the mapping targets the adaptive VCs only and
the escape request is preserved, keeping deadlock freedom intact.

The overlay is mesh-only (``topologies = ("mesh",)``): its static map
pins every destination to exactly one VC, which cannot coexist with the
torus dateline scheme — a wrapping packet must be able to change VC
class mid-route, and a single pinned VC would recreate the wrap cycle
the dateline exists to break.
"""

from __future__ import annotations

from repro.routing.base import RouteContext, RoutingAlgorithm
from repro.routing.duato import DuatoAdaptiveRouting
from repro.routing.oddeven import OddEvenRouting
from repro.routing.requests import Priority, VcRequest
from repro.topology.base import Topology
from repro.topology.ports import Direction


def _fold_xor(value: int) -> int:
    """XOR-fold an integer into a small digest (bitwise parity mixing)."""
    digest = 0
    while value:
        digest ^= value & 0xF
        value >>= 4
    return digest


def xordet_vc(mesh: Topology, destination: int, num_usable_vcs: int) -> int:
    """The XORDET destination→VC mapping.

    The destination's X and Y coordinates are XOR-folded together and
    reduced modulo the number of usable VCs, spreading destination classes
    evenly across VCs as the original scheme does for direct topologies.
    """
    x, y = mesh.coords(destination)
    # Rotate Y before mixing so that destinations differing only in one
    # coordinate still land in different classes for small VC counts.
    mixed = _fold_xor(x) ^ _fold_xor((y << 2) | (y >> 2)) ^ (x + y)
    return mixed % num_usable_vcs


class XordetOverlay(RoutingAlgorithm):
    """Combine a base algorithm's port selection with XORDET VC selection."""

    #: The static destination->VC pinning is incompatible with dateline
    #: VC classes (see the module docstring), regardless of the base.
    topologies = ("mesh",)

    def __init__(self, base: RoutingAlgorithm) -> None:
        self.base = base
        self.name = f"{base.name}+xordet"
        self.uses_escape = base.uses_escape
        self.atomic_vc_reallocation = base.atomic_vc_reallocation

    def select_output(self, ctx: RouteContext) -> Direction:
        if ctx.current == ctx.destination:
            return Direction.LOCAL
        return self._select_direction(ctx)

    def vc_requests_at(
        self, ctx: RouteContext, direction: Direction
    ) -> list[VcRequest]:
        if direction is Direction.LOCAL:
            return self.eject_requests(ctx)
        view = ctx.outputs[direction]
        usable = view.adaptive_vcs()
        vc = usable[xordet_vc(ctx.mesh, ctx.destination, len(usable))]
        requests: list[VcRequest] = []
        # The static mapping admits exactly one VC per destination; if it
        # is busy the packet waits for it (that is the scheme's
        # HoL-avoidance contract), re-requesting the cycle it frees.
        if view.grantable(vc):
            requests.append(VcRequest(direction, vc, Priority.LOW))
        if self.uses_escape:
            requests.extend(self.escape_request(ctx))
        return requests

    def candidate_pri(self, state, current, destination, committed):
        """Batched XORDET: each packet requests only its mapped VC.

        The destination→VC map is pure, so it is precomputed per
        destination once and gathered; grantability and the escape
        request follow the scalar :meth:`vc_requests_at` exactly.
        """
        import numpy as np

        from repro.topology.ports import NUM_PORTS

        batch = len(current)
        num_vcs = state.num_vcs
        g = current * NUM_PORTS + committed
        rows = np.arange(batch)
        low = np.int8(Priority.LOW)
        none = np.int8(-1)

        eject = committed == int(Direction.LOCAL)
        idle = state.adaptive[g] & ~state.busy[g]
        mapped = self._xordet_table(state)[destination]
        selected = np.zeros((batch, num_vcs), dtype=bool)
        selected[rows, mapped] = True
        port_pri = np.where(
            eject[:, None],
            np.where(idle, low, none),
            np.where(selected & ~state.busy[g], low, none),
        )
        esc_cols = self._escape_cols(state, current, destination, committed)
        return port_pri, esc_cols

    def _xordet_table(self, state):
        """Per-destination mapped VC (adaptive VC list indexing), cached."""
        import numpy as np

        key = (state.width, state.height, state.num_vcs, state.escape_vc)
        cached = getattr(self, "_xordet_cache", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        # The state carries the engine's shared topology instance, so a
        # cache miss reuses its coordinate caches instead of rebuilding
        # a fresh Mesh2D.
        mesh = state.mesh()
        usable = [
            v for v in range(state.num_vcs) if v != state.escape_vc
        ]
        table = np.array(
            [
                usable[xordet_vc(mesh, dst, len(usable))]
                for dst in range(mesh.num_nodes)
            ],
            dtype=np.int64,
        )
        self._xordet_cache = (key, table)
        return table

    def _select_direction(self, ctx: RouteContext) -> Direction:
        """Delegate output-port selection to the base algorithm."""
        base = self.base
        if isinstance(base, DuatoAdaptiveRouting):
            candidates = ctx.mesh.minimal_directions(
                ctx.current, ctx.destination
            )
            if ctx.dead_ports:
                candidates = self.live_candidates(ctx, candidates)
            if len(candidates) == 1:
                return candidates[0]
            return base.select_port(ctx, candidates)
        if isinstance(base, OddEvenRouting):
            candidates = base.allowed_directions(
                ctx.mesh, ctx.current, ctx.destination, ctx.source
            )
            if ctx.dead_ports:
                candidates = self.live_candidates(ctx, candidates)
            return base._select_port(ctx, candidates)
        # DOR and any other single-path base algorithm.
        return ctx.mesh.dor_direction(ctx.current, ctx.destination)

    def allowed_directions(
        self, mesh: Topology, current: int, destination: int, source: int
    ) -> list[Direction]:
        return self.base.allowed_directions(mesh, current, destination, source)

    def __repr__(self) -> str:
        return f"XordetOverlay({self.base!r})"
