"""Routing algorithms: DOR, Odd-Even, DBAR, Footprint, and XORDET overlays."""

from repro.routing.base import OutputPortView, RouteContext, RoutingAlgorithm
from repro.routing.requests import Priority, VcRequest
from repro.routing.registry import available_algorithms, create_routing

__all__ = [
    "OutputPortView",
    "RouteContext",
    "RoutingAlgorithm",
    "Priority",
    "VcRequest",
    "available_algorithms",
    "create_routing",
]
