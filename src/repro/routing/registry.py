"""Routing-algorithm registry.

Algorithms are addressed by name in :class:`~repro.sim.config.SimulationConfig`;
an ``+xordet`` suffix wraps the base algorithm in the
:class:`~repro.routing.xordet.XordetOverlay` VC-mapping combinator, matching
the ``DBAR+XORDET`` style configurations of the paper's evaluation.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ConfigurationError, RoutingError
from repro.routing.base import RoutingAlgorithm
from repro.routing.dbar import DbarFineRouting, DbarRouting
from repro.routing.dor import DorRouting
from repro.routing.footprint import FootprintRouting
from repro.routing.oddeven import OddEvenRouting
from repro.routing.xordet import XordetOverlay

_BASE_FACTORIES: dict[str, Callable[[], RoutingAlgorithm]] = {
    "dor": DorRouting,
    "oddeven": OddEvenRouting,
    "odd-even": OddEvenRouting,
    "dbar": DbarRouting,
    "dbar-fine": DbarFineRouting,
    "footprint": FootprintRouting,
    # Hidden alias: "duato" names plain Duato minimal fully-adaptive
    # routing, which DBAR realizes with its congestion-aware port pick.
    # Deliberately absent from available_algorithms() so experiment
    # rosters ("all nine algorithms") are unchanged.
    "duato": DbarRouting,
}


def available_algorithms() -> list[str]:
    """Names accepted by :func:`create_routing`, base and overlay forms."""
    bases = ["dor", "oddeven", "dbar", "footprint"]
    return bases + ["dbar-fine"] + [f"{b}+xordet" for b in bases]


def check_topology_support(name: str, topology: str) -> None:
    """Raise :class:`ConfigurationError` if ``name`` cannot run on
    ``topology``.

    Resolves ``name`` through :func:`create_routing` (so overlays combine
    their restrictions with the base's) and checks the algorithm's
    ``topologies`` declaration.  Unknown names fall through silently —
    :func:`create_routing` reports those with its own error at
    construction time.
    """
    try:
        algorithm = create_routing(name)
    except RoutingError:
        return
    if topology not in algorithm.topologies:
        raise ConfigurationError(
            f"routing '{name}' is {'/'.join(algorithm.topologies)}-only "
            f"and cannot run on a {topology}: its deadlock-freedom "
            f"argument does not survive wrap-around links"
        )


def create_routing(name: str) -> RoutingAlgorithm:
    """Instantiate a routing algorithm from its configuration name.

    ``name`` is case-insensitive; an ``+xordet`` suffix applies the XORDET
    VC-mapping overlay to the base algorithm.
    """
    key = name.strip().lower()
    overlay = False
    if "+" in key:
        base_key, suffix = key.split("+", 1)
        if suffix != "xordet":
            raise RoutingError(f"unknown routing overlay '{suffix}' in '{name}'")
        overlay = True
        key = base_key
    factory = _BASE_FACTORIES.get(key)
    if factory is None:
        raise RoutingError(
            f"unknown routing algorithm '{name}'; "
            f"available: {', '.join(available_algorithms())}"
        )
    algorithm = factory()
    if overlay:
        algorithm = XordetOverlay(algorithm)
    return algorithm
