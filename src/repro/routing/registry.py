"""Routing-algorithm registry.

Algorithms are addressed by name in :class:`~repro.sim.config.SimulationConfig`;
an ``+xordet`` suffix wraps the base algorithm in the
:class:`~repro.routing.xordet.XordetOverlay` VC-mapping combinator, matching
the ``DBAR+XORDET`` style configurations of the paper's evaluation.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import RoutingError
from repro.routing.base import RoutingAlgorithm
from repro.routing.dbar import DbarFineRouting, DbarRouting
from repro.routing.dor import DorRouting
from repro.routing.footprint import FootprintRouting
from repro.routing.oddeven import OddEvenRouting
from repro.routing.xordet import XordetOverlay

_BASE_FACTORIES: dict[str, Callable[[], RoutingAlgorithm]] = {
    "dor": DorRouting,
    "oddeven": OddEvenRouting,
    "odd-even": OddEvenRouting,
    "dbar": DbarRouting,
    "dbar-fine": DbarFineRouting,
    "footprint": FootprintRouting,
}


def available_algorithms() -> list[str]:
    """Names accepted by :func:`create_routing`, base and overlay forms."""
    bases = ["dor", "oddeven", "dbar", "footprint"]
    return bases + ["dbar-fine"] + [f"{b}+xordet" for b in bases]


def create_routing(name: str) -> RoutingAlgorithm:
    """Instantiate a routing algorithm from its configuration name.

    ``name`` is case-insensitive; an ``+xordet`` suffix applies the XORDET
    VC-mapping overlay to the base algorithm.
    """
    key = name.strip().lower()
    overlay = False
    if "+" in key:
        base_key, suffix = key.split("+", 1)
        if suffix != "xordet":
            raise RoutingError(f"unknown routing overlay '{suffix}' in '{name}'")
        overlay = True
        key = base_key
    factory = _BASE_FACTORIES.get(key)
    if factory is None:
        raise RoutingError(
            f"unknown routing algorithm '{name}'; "
            f"available: {', '.join(available_algorithms())}"
        )
    algorithm = factory()
    if overlay:
        algorithm = XordetOverlay(algorithm)
    return algorithm
