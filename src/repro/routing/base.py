"""Routing algorithm interface.

The interface mirrors a BookSim-style router pipeline:

* :meth:`RoutingAlgorithm.select_output` is the *route computation* (RC)
  stage — called **once** per packet per router when the head flit reaches
  the front of its input VC.  The returned output port is a commitment: the
  packet waits for a VC at that port even if another minimal port later
  looks better.  This commit-once behaviour is what allows congestion and
  HoL blocking to build up, and is how BookSim (the paper's substrate)
  implements adaptive routing.
* :meth:`RoutingAlgorithm.vc_requests_at` is the *VC allocation* request
  generation — re-evaluated **every cycle** until the packet wins a VC,
  because the VC states it prioritizes (idle/footprint/busy) change as the
  network moves.  It returns :class:`VcRequest` records, the paper's
  ``ADD(P, v, pri)`` calls.

The context exposes per-output-port state through
:class:`OutputPortView`: which downstream VCs are idle, which are
*footprint* VCs for the packet's destination, and which are busy with
other destinations.  Only local-router information is exposed, matching
the paper's cost argument (§4.4): no remote congestion notification is
available to any algorithm.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence

from repro.routing.requests import Priority, VcRequest
from repro.topology.base import Topology
from repro.topology.ports import Direction


class OutputPortView(Protocol):
    """Local state of one output port, as visible to routing algorithms.

    Implemented by :class:`repro.router.output.OutputPort`; a lightweight
    fake is used in unit tests.
    """

    num_vcs: int
    escape_vc: int | None

    @property
    def escape_vcs(self) -> tuple[int, ...]:
        """Reserved escape VCs in dateline-class order (empty when none).

        One entry per :attr:`Topology.num_vc_classes` on ports that
        carry an escape subnetwork: ``(0,)`` on a mesh, ``(0, 1)`` on a
        torus.  Only consulted on multi-class topologies, so mesh-only
        test fakes may omit it.
        """
        ...

    def idle_vcs(self) -> Sequence[int]:
        """Downstream VCs currently free for allocation (adaptive VCs only
        when an escape VC is reserved)."""

    def established_idle_vcs(self) -> Sequence[int]:
        """Idle VCs that were idle before this cycle's releases."""

    def footprint_vcs(self, dst: int) -> Sequence[int]:
        """Busy adaptive VCs whose current owner packet is destined to
        ``dst`` — the paper's footprint channels."""

    def fresh_footprint_vcs(self, dst: int) -> Sequence[int]:
        """Freshly freed VCs last owned by ``dst`` (reclaimable at HIGH)."""

    def fresh_other_vcs(self, dst: int) -> Sequence[int]:
        """Freshly freed VCs last owned by other destinations."""

    def busy_vcs(self) -> Sequence[int]:
        """All busy (allocated) adaptive VCs, regardless of owner."""

    def adaptive_vcs(self) -> Sequence[int]:
        """All VCs a non-escape request may target."""

    def grantable(self, vc: int) -> bool:
        """Whether ``vc`` can be allocated to a new packet right now."""

    def free_credit_total(self) -> int:
        """Total free downstream buffer slots across adaptive VCs (a finer
        congestion signal used by DBAR's port selection)."""


@dataclass
class RouteContext:
    """Everything a routing algorithm may look at for one decision.

    Attributes
    ----------
    mesh:
        Network geometry (any :class:`~repro.topology.base.Topology`;
        the attribute keeps its historical name).
    current, destination, source:
        Current router, packet destination, packet source node ids.
    input_direction:
        Port through which the packet entered this router (``LOCAL`` for
        freshly injected packets).
    outputs:
        View of each candidate output port, keyed by direction.  The engine
        provides views for every port of the router; algorithms index only
        the directions they consider.
    num_vcs:
        VCs per physical channel.
    congestion_threshold:
        Congestion threshold in VCs (already scaled by ``num_vcs``).
    footprint_vc_limit:
        Optional cap on footprint VCs per (port, destination); ``None``
        means unlimited (the paper's configuration).
    rng:
        Deterministic stream for tie-breaking.
    dead_ports:
        Bitmask of output directions whose link or downstream router is
        currently faulted (bit ``d`` set ⟹ port ``d`` dead).  Zero in a
        fault-free network.  Adaptive algorithms steer around dead ports
        via :meth:`RoutingAlgorithm.live_candidates`.
    """

    mesh: Topology
    current: int
    destination: int
    source: int
    input_direction: Direction
    outputs: Mapping[Direction, OutputPortView]
    num_vcs: int
    congestion_threshold: int
    footprint_vc_limit: int | None
    rng: random.Random
    dead_ports: int = 0


class RoutingAlgorithm(abc.ABC):
    """Base class of all routing algorithms.

    Subclasses implement :meth:`select_output` (the once-per-router port
    commitment), :meth:`vc_requests_at` (the per-cycle VC requests at the
    committed port), and :meth:`allowed_directions` (the set of productive
    output directions the algorithm permits — used for adaptiveness
    metrics and turn-legality tests; it must be a superset of whatever
    :meth:`select_output` can return).
    """

    #: Registry name, set by subclasses.
    name: str = "base"
    #: Whether the lowest VCs are reserved as Duato escape channels (one
    #: per dateline class of the topology: VC0 on a mesh, VC0+VC1 on a
    #: torus).
    uses_escape: bool = False
    #: Whether downstream VCs are reallocated atomically (only after the
    #: tail flit's credit returns) — required by Duato-based algorithms,
    #: see §4.2.1 of the paper.
    atomic_vc_reallocation: bool = False
    #: Topologies the algorithm's turn model is sound on.  Algorithms
    #: whose deadlock-freedom argument is mesh-structural (Odd-Even's
    #: column-parity turn rules, XORDET's precomputed mesh table)
    #: restrict this; config validation rejects unsupported combinations
    #: with a loud :class:`~repro.exceptions.ConfigurationError`.
    topologies: tuple[str, ...] = ("mesh", "torus")

    @abc.abstractmethod
    def select_output(self, ctx: RouteContext) -> Direction:
        """Commit to an output port (RC stage; once per packet per router).

        Returns ``LOCAL`` at the destination.
        """

    @abc.abstractmethod
    def vc_requests_at(
        self, ctx: RouteContext, direction: Direction
    ) -> list[VcRequest]:
        """Per-cycle VC requests given the committed ``direction``."""

    @abc.abstractmethod
    def allowed_directions(
        self, mesh: Topology, current: int, destination: int, source: int
    ) -> list[Direction]:
        """Productive directions this algorithm may ever take at ``current``.

        Returns ``[LOCAL]`` when ``current == destination``.
        """

    def route(self, ctx: RouteContext) -> list[VcRequest]:
        """Select a port and produce its requests in one call.

        Convenience composition used by tests and analyses; the simulator
        itself calls the two stages separately so the port commitment can
        be held across cycles.
        """
        return self.vc_requests_at(ctx, self.select_output(ctx))

    # ------------------------------------------------------------------
    # Batched request generation (vector engine)
    # ------------------------------------------------------------------
    def candidate_mask(self, state, current, destination, committed):
        """Batched ``vc_requests_at`` over whole-network arrays.

        Parameters are a :class:`~repro.routing.batch.VcStateArrays` view
        of every output port's VC state plus three equal-length integer
        arrays describing the packets being routed: current router,
        destination, and the committed output direction (``LOCAL`` at the
        destination).  Returns an ``int8`` priority array shaped
        ``[batch, NUM_PORTS, num_vcs]`` where entry ``[b, d, v]`` is the
        :class:`Priority` of packet ``b``'s request for VC ``v`` at port
        ``d``, or ``-1`` for no request.

        Enumerating a row's requests in (priority descending, VC
        ascending) order with the escape request last reproduces the
        scalar request-list order exactly: every scalar implementation
        emits same-priority requests for a single direction in ascending
        VC order, and the escape request is always the lone LOWEST entry.
        The scalar ``vc_requests_at`` is the oracle
        (``tests/property/test_prop_candidate_mask.py``).

        Assembled generically from :meth:`candidate_pri` — subclasses
        override that compact form, and the vector engine consumes it
        directly (all non-escape requests target the committed port, so
        the full ``[batch, NUM_PORTS, num_vcs]`` cube is only needed by
        the oracle tests).
        """
        import numpy as np

        from repro.topology.ports import NUM_PORTS

        batch = len(current)
        port_pri, esc_cols = self.candidate_pri(
            state, current, destination, committed
        )
        pri = np.full(
            (batch, NUM_PORTS, state.num_vcs), -1, dtype=np.int8
        )
        rows = np.arange(batch)
        pri[rows, committed] = port_pri
        if esc_cols is not None:
            emit = np.flatnonzero(esc_cols >= 0)
            pri.reshape(batch, -1)[emit, esc_cols[emit]] = np.int8(
                Priority.LOWEST
            )
        return pri

    def candidate_pri(self, state, current, destination, committed):
        """Compact batched request generation (vector engine hot path).

        Returns ``(port_pri, esc_cols)``: ``port_pri`` is the ``int8``
        ``[batch, num_vcs]`` request priority of each VC *at the
        committed port* (``-1`` for no request), and ``esc_cols`` is the
        flat ``direction * num_vcs + vc`` column of the LOWEST-priority
        escape request per row (``-1`` when absent), or ``None`` for
        algorithms without an escape subnetwork.  Escape columns never
        collide with ``port_pri`` entries (the escape VC is excluded
        from the adaptive set at transit ports), and no ``port_pri``
        value is ever LOWEST — so the max-priority request run either
        lies entirely inside ``port_pri`` or is the lone escape entry.

        This default implements the oblivious policy shared by DOR,
        Odd-Even, and DBAR (+ the ejection requests every algorithm
        uses): all idle adaptive VCs at the committed port at LOW, plus
        the escape request for Duato-based algorithms.  Algorithms with
        different VC selection override it (Footprint, XORDET overlays).
        """
        import numpy as np

        from repro.topology.ports import NUM_PORTS

        g = current * NUM_PORTS + committed
        idle = state.adaptive[g] & ~state.busy[g]
        port_pri = np.where(idle, np.int8(Priority.LOW), np.int8(-1))
        esc_cols = self._escape_cols(state, current, destination, committed)
        return port_pri, esc_cols

    def _escape_cols(
        self, state, current, destination, committed, suppress=None
    ):
        """Flat column of each row's LOWEST-priority escape request.

        Mirrors :meth:`escape_request`: one request for the escape VC at
        the DOR port, emitted only when that VC is currently grantable
        and the packet is not ejecting.  ``suppress`` masks rows that
        must not request the escape VC (Footprint's waiting-on-footprint
        rule).  Returns ``None`` when the algorithm has no escape VC,
        else an int array with ``-1`` for rows without the request.
        """
        import numpy as np

        from repro.topology.ports import NUM_PORTS

        escape = state.escape_vc
        if not self.uses_escape or escape is None:
            return None
        eligible = committed != int(Direction.LOCAL)
        if suppress is not None:
            eligible = eligible & ~suppress
        dor = state.dor_directions(current, destination)
        grantable = ~state.busy[current * NUM_PORTS + dor, escape]
        return np.where(
            eligible & grantable, dor * state.num_vcs + escape, -1
        )

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def live_candidates(
        ctx: RouteContext, candidates: list[Direction]
    ) -> list[Direction]:
        """Filter faulted output ports out of a candidate set.

        Returns ``candidates`` unchanged when every candidate is dead
        (or no fault is active): the packet then commits to a dead port
        and simply waits — its VC requests are suppressed by the router
        until the fault heals or a mask change triggers a re-route.
        """
        mask = ctx.dead_ports
        if not mask:
            return candidates
        live = [d for d in candidates if not (mask >> d) & 1]
        return live or candidates

    def eject_requests(self, ctx: RouteContext) -> list[VcRequest]:
        """Requests for delivery at the destination (LOCAL port).

        Any free ejection VC is claimed at LOW priority.  Requests are
        only emitted for currently grantable VCs: a request on a busy VC
        can never be granted under per-cycle recomputation, so omitting it
        is behaviourally identical and much cheaper (see
        :mod:`repro.routing.requests`).
        """
        view = ctx.outputs[Direction.LOCAL]
        return [
            VcRequest(Direction.LOCAL, v, Priority.LOW) for v in view.idle_vcs()
        ]

    def escape_request(self, ctx: RouteContext) -> list[VcRequest]:
        """The always-present lowest-priority escape request (line 45).

        Emitted only when the escape VC is currently grantable — a busy
        escape VC cannot be granted this cycle, and the request reappears
        on the cycle it frees.

        On single-class topologies (mesh) the escape subnetwork is
        dimension-order routing on VC0.  On a torus there is one escape
        VC per dateline class and the request targets the class of this
        hop (:meth:`~repro.topology.base.Topology.wrap_vc_class`), which
        keeps the escape network's channel dependency graph acyclic
        across the wrap links.
        """
        escape_dir = ctx.mesh.dor_direction(ctx.current, ctx.destination)
        view = ctx.outputs[escape_dir]
        if ctx.mesh.num_vc_classes > 1:
            evcs = view.escape_vcs
            if len(evcs) < ctx.mesh.num_vc_classes:
                return []
            vc = evcs[
                ctx.mesh.wrap_vc_class(ctx.current, ctx.destination, escape_dir)
            ]
        else:
            vc = view.escape_vc
        if vc is None or not view.grantable(vc):
            return []
        return [VcRequest(escape_dir, vc, Priority.LOWEST)]

    def vc_class(self, num_vcs: int, vc: int) -> int | None:
        """Dateline class ``vc`` belongs to on a multi-class topology.

        ``None`` means the algorithm does not partition its adaptive VCs
        by class (Duato-based algorithms constrain only their escape
        VCs, which the router tracks separately).  DOR overrides this
        with its half-split, and the invariant checker uses it to verify
        dateline legality per hop.
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
