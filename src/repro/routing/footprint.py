"""Footprint routing — the paper's primary contribution (Algorithm 1).

Footprint is a Duato-based minimal fully-adaptive routing algorithm that
*regulates* adaptiveness under congestion.  A *footprint VC* is a downstream
VC currently occupied by a packet to the **same destination** as the packet
being routed.  The algorithm has three steps:

1. **Legal outputs** — the minimal ports ``(P_x, P_y)`` with the DOR port as
   escape, the idle VCs and the footprint VCs of each.
2. **Port selection** — more idle VCs wins; ties broken by more footprint
   VCs; remaining ties broken randomly (Algorithm 1 lines 10-20).
3. **VC requests** — three regimes by congestion level at the chosen port
   (lines 28-43), using the threshold ``size(VC)/2``:

   * not congested (``idle >= threshold``): request all adaptive VCs at LOW
     priority — maximize buffer utilization;
   * saturated (``idle == 0``): request only footprint VCs at HIGH priority
     if any exist (the packet *waits on the footprint channel*), otherwise
     all adaptive VCs at LOW;
   * in between: idle VCs at HIGHEST, footprint VCs at HIGH, other busy
     VCs at LOW.

   The escape VC on the DOR port is always requested at LOWEST priority
   (line 45), which preserves Duato deadlock freedom.

Emulation note (see :mod:`repro.routing.requests`): this simulator's VC
allocator recomputes requests from current state every cycle rather than
holding them, so a request on a busy VC can never be granted and is not
emitted.  The observable effects of Algorithm 1's busy-VC requests are
reproduced against the *established* VC state — the state a hardware
allocator's held requests were computed from:

* the congestion regime is classified by the idle VCs that were already
  idle before this cycle's releases (``established_idle_vcs``);
* a VC freed this cycle keeps its last owner for exactly this allocation
  round; a packet to the same destination re-claims it at HIGH priority
  (its held ``ADD(P, VC_fp, High)`` winning at the freeing instant),
  while packets to other destinations may take it only at LOW priority
  (their held busy-VC requests) — and in the saturated regime a packet
  whose footprint exists elsewhere does not request it at all, which is
  precisely what keeps the congested flow from spreading to newly freed
  VCs;
* HIGH stays *below* HIGHEST, preserving Algorithm 1's preference for
  established idle VCs over footprint VCs in the intermediate regime.

The optional ``footprint_vc_limit`` implements the paper's §4.2.5
future-work knob: once a destination already owns that many footprint VCs
at a port, the packet stops claiming *new* idle VCs there and waits on its
footprint, bounding the congestion-tree branch thickness explicitly.
"""

from __future__ import annotations

from repro.routing.base import RouteContext
from repro.routing.duato import DuatoAdaptiveRouting
from repro.routing.requests import Priority, VcRequest
from repro.topology.ports import Direction

_FP_PRI_TABLE = None


def _fp_pri_table():
    """``[regime, vc_code] -> priority`` lookup for the batched path.

    Regimes (rows): 0 = eject/uncongested, 1 = footprint-limited or
    saturated-with-fresh-footprint, 2 = saturated-no-footprint,
    3 = intermediate, 4 = waiting/no-requests.  VC codes (columns) pack
    ``idle | grantable_fresh << 1 | owner_is_mine << 2``.  One fancy
    gather then replaces the per-regime masked writes of Algorithm 1's
    request rules.
    """
    global _FP_PRI_TABLE
    if _FP_PRI_TABLE is None:
        import numpy as np

        table = np.full((5, 8), -1, dtype=np.int8)
        low = np.int8(Priority.LOW)
        high = np.int8(Priority.HIGH)
        # Regime 0: every idle VC (codes with bit 0) at LOW.
        table[0, 1::2] = low
        # Regime 1: only freshly freed footprint VCs, at HIGH.
        table[1, 7] = high
        # Regime 2: only other flows' freshly freed VCs, at LOW.
        table[2, 3] = low
        # Regime 3: established idle at HIGHEST, fresh footprint at
        # HIGH, fresh other at LOW.
        table[3, [1, 5]] = np.int8(Priority.HIGHEST)
        table[3, 7] = high
        table[3, 3] = low
        _FP_PRI_TABLE = table
    return _FP_PRI_TABLE


class FootprintRouting(DuatoAdaptiveRouting):
    """The Footprint routing algorithm (Algorithm 1 of the paper)."""

    name = "footprint"

    def vc_requests_at(self, ctx: RouteContext, direction: Direction):
        """Adaptive requests plus the escape request — except while the
        packet is *waiting on a live footprint channel*.

        The paper's deadlock argument (§3.4) observes that a packet
        blocked behind footprint VCs depends, through a chain of
        same-destination packets, only on the endpoint draining — so it
        cannot be blocked indefinitely and does not need the escape
        channel.  Suppressing the escape request while waiting keeps the
        congested flow off the escape subnetwork; otherwise waiting
        packets leak onto the DOR-routed escape VCs and rebuild exactly
        the thick, deterministic congestion tree (Fig. 2(a)) that
        Footprint sets out to avoid.
        """
        if direction is Direction.LOCAL:
            return self.eject_requests(ctx)
        requests = self.vc_requests(ctx, direction)
        waiting_on_footprint = not requests and bool(
            ctx.outputs[direction].footprint_vcs(ctx.destination)
        )
        if not waiting_on_footprint:
            requests.extend(self.escape_request(ctx))
        return requests

    def candidate_pri(self, state, current, destination, committed):
        """Batched Algorithm 1 as boolean mask algebra.

        Reproduces :meth:`vc_requests` regime by regime — footprint VCs
        are ``busy & adaptive & (owner == destination)``, the established
        idle set is ``idle & ~fresh`` — plus the escape suppression of
        :meth:`vc_requests_at` (no escape request while the packet waits
        on a live footprint channel).  Scalar oracle-checked through the
        :meth:`candidate_mask` assembly by the candidate-mask property
        tests.
        """
        import numpy as np

        from repro.topology.ports import NUM_PORTS

        batch = len(current)
        g = current * NUM_PORTS + committed
        adaptive = state.adaptive[g]
        busy = state.busy[g]
        fresh = state.fresh[g]
        idle = adaptive & ~busy
        est_count = (idle & ~fresh).sum(axis=1)
        mine = state.owner[g] == destination[:, None]
        fresh_grantable = fresh & idle
        fp_count = (busy & adaptive & mine).sum(axis=1)

        eject = committed == int(Direction.LOCAL)
        transit = ~eject
        # Classify each row's regime (masks are disjoint, so the
        # ``copyto`` order below is free), then resolve every VC's
        # priority with one ``[regime, vc_code]`` table gather —
        # replacing one masked 2-D write per regime/priority pair.
        if state.footprint_vc_limit is not None:
            limited = transit & (fp_count >= state.footprint_vc_limit)
            unlimited = transit & ~limited
        else:
            limited = None
            unlimited = transit
        uncongested = unlimited & (est_count >= state.congestion_threshold)
        congested = unlimited & ~uncongested
        saturated = congested & (est_count == 0)
        intermediate = congested ^ saturated
        if saturated.any():
            saturated_mine = saturated & (fresh_grantable & mine).any(
                axis=1
            )
            # A live footprint and nothing freshly reclaimable: wait,
            # request nothing (and suppress the escape request below).
            not_mine = saturated & ~saturated_mine
            saturated_free = not_mine & ~(fp_count > 0)
        else:
            saturated_mine = saturated_free = saturated

        rid = np.full(batch, 4, dtype=np.int8)
        np.copyto(rid, np.int8(0), where=eject | uncongested)
        regime = (
            saturated_mine if limited is None else limited | saturated_mine
        )
        if regime.any():
            np.copyto(rid, np.int8(1), where=regime)
        if saturated_free.any():
            np.copyto(rid, np.int8(2), where=saturated_free)
        if intermediate.any():
            np.copyto(rid, np.int8(3), where=intermediate)
        # vc_code = idle | grantable_fresh << 1 | mine << 2 (bools are
        # 0/1 bytes, so the int8 views are zero-copy).
        code = mine.view(np.int8) << np.int8(1)
        code += fresh_grantable.view(np.int8)
        code <<= np.int8(1)
        code += idle.view(np.int8)
        port_pri = _fp_pri_table()[rid[:, None], code]

        # waiting_on_footprint: the adaptive requests came up empty while
        # a footprint channel exists (covers both the saturated-wait and
        # the exhausted footprint_vc_limit regimes).
        waiting = transit & ~(port_pri >= 0).any(axis=1) & (fp_count > 0)
        esc_cols = self._escape_cols(
            state, current, destination, committed, suppress=waiting
        )
        return port_pri, esc_cols

    # ------------------------------------------------------------------
    # Step 2: output-port selection
    # ------------------------------------------------------------------
    def select_port(
        self, ctx: RouteContext, candidates: list[Direction]
    ) -> Direction:
        views = {d: ctx.outputs[d] for d in candidates}
        idle = {d: len(views[d].idle_vcs()) for d in candidates}
        best_idle = max(idle.values())
        tied = [d for d in candidates if idle[d] == best_idle]
        if len(tied) > 1 and best_idle < ctx.congestion_threshold:
            # Tie on idle VCs under congestion: prefer the port with more
            # footprint VCs (lines 14-17).  Per §3.2, "the footprint
            # channels are only considered or chosen if the network is
            # congested — if there is no congestion, all ports (and VCs)
            # are equally considered", so the footprint tie-break is gated
            # on the congestion threshold; without the gate, deterministic
            # flows funnel onto a single port at low load and forfeit port
            # adaptiveness.
            fp = {
                d: len(views[d].footprint_vcs(ctx.destination)) for d in tied
            }
            best_fp = max(fp.values())
            tied = [d for d in tied if fp[d] == best_fp]
        if len(tied) == 1:
            return tied[0]
        return tied[ctx.rng.randrange(len(tied))]

    # ------------------------------------------------------------------
    # Step 3: VC requests by congestion regime
    # ------------------------------------------------------------------
    def vc_requests(
        self, ctx: RouteContext, direction: Direction
    ) -> list[VcRequest]:
        view = ctx.outputs[direction]
        dst = ctx.destination
        established = view.established_idle_vcs()
        fresh_mine = view.fresh_footprint_vcs(dst)

        if ctx.footprint_vc_limit is not None and (
            len(view.footprint_vcs(dst)) >= ctx.footprint_vc_limit
        ):
            # §4.2.5 extension: the destination already owns its VC quota
            # at this port — only re-claim freed footprint VCs, never new
            # ones.
            return [
                VcRequest(direction, v, Priority.HIGH) for v in fresh_mine
            ]

        if len(established) >= ctx.congestion_threshold:
            # No congestion: use all adaptive VCs at flat priority;
            # waiting on footprint channels here would only add latency
            # (Algorithm 1 line 31).
            return [
                VcRequest(direction, v, Priority.LOW)
                for v in view.idle_vcs()
            ]

        if not established:
            # Saturated regime (line 32: size(VC_idle) == 0 when the held
            # requests were computed).
            if fresh_mine:
                # The packet's footprint VC just freed: re-claim it at
                # HIGH (line 34's held request winning the instant the VC
                # frees).
                return [
                    VcRequest(direction, v, Priority.HIGH)
                    for v in fresh_mine
                ]
            if view.footprint_vcs(dst):
                # A footprint exists and is still busy: wait on it and do
                # NOT grab other flows' freed VCs — this is the regulation
                # that keeps the congestion-tree branch thin.
                return []
            # No footprint anywhere: full adaptivity (line 37) — freed
            # VCs of other flows are fair game at LOW.
            return [
                VcRequest(direction, v, Priority.LOW)
                for v in view.fresh_other_vcs(dst)
            ]

        # Intermediate regime (lines 40-42): established idle VCs at
        # HIGHEST, the packet's freshly freed footprint VCs at HIGH, and
        # other flows' freshly freed VCs at LOW (the held busy-VC
        # requests).
        requests = [
            VcRequest(direction, v, Priority.HIGHEST) for v in established
        ]
        requests.extend(
            VcRequest(direction, v, Priority.HIGH) for v in fresh_mine
        )
        requests.extend(
            VcRequest(direction, v, Priority.LOW)
            for v in view.fresh_other_vcs(dst)
        )
        return requests
