"""Reproduction of *Footprint: Regulating Routing Adaptiveness in
Networks-on-Chip* (Fu & Kim, ISCA 2017).

The package provides a cycle-level network-on-chip simulator (2D mesh or
torus, input-queued virtual-channel routers, credit-based wormhole flow
control)
together with the paper's Footprint routing algorithm and its baselines
(DOR, Odd-Even, DBAR, and the XORDET static VC mapping overlay), the
paper's traffic workloads, and the analyses behind its figures:
latency-throughput sweeps, congestion-tree shape, blocking purity, and the
implementation-cost model.

Quick start::

    from repro import SimulationConfig, Simulator

    config = SimulationConfig(width=4, num_vcs=4, routing="footprint",
                              traffic="transpose", injection_rate=0.2)
    result = Simulator(config).run()
    print(result.summary())
"""

from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.sim.results import SimulationResult
from repro.routing.registry import available_algorithms, create_routing
from repro.topology.base import TOPOLOGIES, Topology, create_topology
from repro.topology.mesh import Mesh2D
from repro.topology.ports import Direction
from repro.topology.torus import Torus2D
from repro.metrics.sweep import injection_sweep, saturation_throughput
from repro.core.cost import CostModel

__version__ = "1.0.0"

__all__ = [
    "SimulationConfig",
    "Simulator",
    "SimulationResult",
    "available_algorithms",
    "create_routing",
    "Mesh2D",
    "Torus2D",
    "Topology",
    "TOPOLOGIES",
    "create_topology",
    "Direction",
    "injection_sweep",
    "saturation_throughput",
    "CostModel",
    "__version__",
]
