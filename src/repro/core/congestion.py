"""Congestion-tree extraction and branch-thickness measurement (paper §1-2).

A destination's congestion tree is the set of channels whose VCs hold (or
are reserved by) packets destined to it, rooted at the destination's
ejection port.  The paper's central observation is that the *thickness* of
the tree's branches — how many VCs of each channel participate — governs
how much HoL blocking the tree inflicts on unrelated traffic.  Footprint's
goal is a tree with few branches, each one VC thick (Fig. 4), versus the
all-VC-thick branches of DOR/fully-adaptive routing (Fig. 2).

:func:`extract_congestion_tree` reads a live :class:`Simulator` and builds
the tree for a destination from the routers' output-port owner tables plus
buffered flits, so it measures exactly the state Footprint's owner
registers track.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.engine import Simulator
from repro.topology.ports import Direction


@dataclass
class CongestionTree:
    """Congestion tree of one destination at one instant.

    ``branches`` maps a channel — identified by ``(node, direction)`` of
    the upstream router's output port — to the set of VC indices
    participating in the tree on that channel.
    """

    destination: int
    branches: dict[tuple[int, Direction], set[int]] = field(default_factory=dict)

    @property
    def num_branches(self) -> int:
        """Number of channels participating in the tree."""
        return len(self.branches)

    @property
    def total_vcs(self) -> int:
        """Total VCs participating across all branches."""
        return sum(len(vcs) for vcs in self.branches.values())

    @property
    def max_thickness(self) -> int:
        """VC count of the thickest branch (0 for an empty tree)."""
        if not self.branches:
            return 0
        return max(len(vcs) for vcs in self.branches.values())

    @property
    def mean_thickness(self) -> float:
        if not self.branches:
            return 0.0
        return self.total_vcs / len(self.branches)

    def describe(self) -> str:
        lines = [
            f"congestion tree for destination {self.destination}: "
            f"{self.num_branches} branches, {self.total_vcs} VCs, "
            f"max thickness {self.max_thickness}"
        ]
        for (node, direction), vcs in sorted(self.branches.items()):
            lines.append(
                f"  n{node}.{direction.name:<5} VCs {sorted(vcs)}"
            )
        return "\n".join(lines)


def extract_congestion_tree(
    simulator: Simulator, destination: int, include_local: bool = True
) -> CongestionTree:
    """Build the congestion tree of ``destination`` from live state.

    A VC participates when the upstream output port's owner table assigns
    it to ``destination``, or when any flit buffered in the corresponding
    downstream input VC (or staged in the output FIFO on that VC) is headed
    to ``destination``.
    """
    tree = CongestionTree(destination)

    def mark(node: int, direction: Direction, vc: int) -> None:
        tree.branches.setdefault((node, direction), set()).add(vc)

    for router in simulator.routers:
        for direction, port in router.output_ports.items():
            if direction is Direction.LOCAL and not include_local:
                continue
            for vc in range(port.num_vcs):
                if (
                    port.allocated[vc] or port._draining[vc]
                ) and port.owner_dst[vc] == destination:
                    mark(router.node, direction, vc)
            for flit, vc in port.fifo:
                if flit.dst == destination:
                    mark(router.node, direction, vc)
        for direction, vcs in router.input_vcs.items():
            if direction is Direction.LOCAL:
                continue
            upstream = simulator.mesh.neighbor(router.node, direction)
            if upstream is None:
                continue
            from repro.topology.ports import OPPOSITE

            for vc_index, ivc in enumerate(vcs):
                if any(f.dst == destination for f in ivc.fifo):
                    mark(upstream, OPPOSITE[direction], vc_index)
    return tree
