"""Analyses of the paper's contribution: two-level adaptiveness metrics,
congestion-tree extraction, blocking purity, and the implementation-cost
model."""

from repro.core.adaptiveness import (
    port_adaptiveness,
    vc_adaptiveness,
    mean_port_adaptiveness,
    qualitative_comparison,
)
from repro.core.congestion import CongestionTree, extract_congestion_tree
from repro.core.cost import CostModel
from repro.core.purity import purity_of_blocking, hol_blocking_degree

__all__ = [
    "port_adaptiveness",
    "vc_adaptiveness",
    "mean_port_adaptiveness",
    "qualitative_comparison",
    "CongestionTree",
    "extract_congestion_tree",
    "CostModel",
    "purity_of_blocking",
    "hol_blocking_degree",
]
