"""Implementation-cost model of Footprint routing (paper §4.4).

Footprint needs only local router state:

* per output port, a register counting idle VCs — ``ceil(log2(V + 1))``
  bits (the paper quotes ``log2(num_of_vcs)``, i.e. the same magnitude);
* per downstream VC, an *owner* register holding the destination of the
  packet currently occupying it — ``ceil(log2(N))`` bits for an N-node
  network.

For the paper's example — an 8x8 mesh (N = 64, so 6-bit owners) with
16 VCs — the owner table costs ``16 x 6 = 96`` bits; adding two state bits
per VC (idle / allocated / draining, the states the owner entry must be
qualified by) and the ``log2(V)``-bit idle counter gives
``96 + 32 + 4 = 132`` bits per port, the figure the paper reports.  The
footprint-VC count needed by port selection is derived combinationally
from the owner table and costs no storage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Storage cost of Footprint state for one router port."""

    num_nodes: int
    num_vcs: int

    @property
    def owner_bits_per_vc(self) -> int:
        """log2(N)-bit destination-owner register per VC."""
        return max(1, math.ceil(math.log2(self.num_nodes)))

    @property
    def owner_table_bits(self) -> int:
        return self.num_vcs * self.owner_bits_per_vc

    @property
    def state_bits(self) -> int:
        """Two state bits per VC (idle / allocated / draining) qualifying
        the owner entry."""
        return 2 * self.num_vcs

    @property
    def idle_counter_bits(self) -> int:
        """Idle-VC counter per port (the paper's log2(V)-bit register)."""
        return max(1, math.ceil(math.log2(self.num_vcs)))

    @property
    def total_bits_per_port(self) -> int:
        return self.owner_table_bits + self.state_bits + self.idle_counter_bits

    def overhead_vs_flit_buffer(self, flit_bits: int = 128) -> float:
        """Storage overhead expressed in flit-buffer entries (paper: ~1)."""
        return self.total_bits_per_port / flit_bits

    def describe(self) -> str:
        return (
            f"CostModel(N={self.num_nodes}, V={self.num_vcs}): "
            f"owners {self.owner_table_bits}b + state {self.state_bits}b + "
            f"idle counter {self.idle_counter_bits}b "
            f"= {self.total_bits_per_port} bits/port"
        )
