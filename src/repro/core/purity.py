"""Purity-of-blocking metrics (paper §4.3, Fig. 10 b-c).

*Purity of blocking* is the ratio of footprint VCs to all busy VCs observed
when VC allocation fails for a packet; the higher the purity, the less
head-of-line blocking the busy VCs can inflict (they already carry traffic
to the same destination).  The *HoL-blocking degree* multiplies the
impurity by the number of blocking events.

The raw counters are collected inside the routers
(:class:`repro.router.router.BlockingStats`); these helpers expose the
paper's derived quantities from a finished run.
"""

from __future__ import annotations

from repro.sim.results import SimulationResult


def purity_of_blocking(result: SimulationResult) -> float:
    """Footprint-VC share of busy VCs sampled at blocking events."""
    return result.blocking.purity


def hol_blocking_degree(result: SimulationResult) -> float:
    """(1 - purity) x number of blocking events."""
    return result.blocking.hol_degree


def blocking_rate(result: SimulationResult) -> float:
    """Blocking events per simulated cycle (auxiliary diagnostic)."""
    if result.cycles_run == 0:
        return 0.0
    return result.blocking.blocking_events / result.cycles_run
