"""Two-level routing adaptiveness (paper §3.1).

*Port adaptiveness* (Eq. 1) between a node pair is the ratio of output
ports the algorithm permits to the number of minimal ports, evaluated at a
router.  We also provide a path-aggregated mean over all routers reachable
on minimal paths, which is what "fully adaptive" (ratio 1) versus
"partially adaptive" (between 0 and 1) refers to for a whole pair.

*VC adaptiveness* (Eq. 2) is the per-channel ratio of VCs the algorithm
may adaptively choose from.  For Duato-based algorithms it is
``(V - 1) / V`` on ordinary channels and 1 on escape channels; for
oblivious VC selection (all VCs used indiscriminately with no choice being
exercised) the paper assigns 0, and for static VC mappings (XORDET) the
packet has exactly one VC, also 0 choice.

These functions reproduce Table 1's qualitative rows quantitatively.
"""

from __future__ import annotations

from fractions import Fraction

from repro.routing.base import RoutingAlgorithm
from repro.routing.duato import DuatoAdaptiveRouting
from repro.routing.xordet import XordetOverlay
from repro.topology.base import Topology
from repro.topology.ports import Direction


def port_adaptiveness(
    algorithm: RoutingAlgorithm,
    mesh: Topology,
    current: int,
    destination: int,
    source: int | None = None,
) -> Fraction:
    """Eq. 1 at one router: allowed ports / minimal ports."""
    if current == destination:
        return Fraction(1)
    minimal = mesh.minimal_directions(current, destination)
    allowed = [
        d
        for d in algorithm.allowed_directions(
            mesh, current, destination, source if source is not None else current
        )
        if d is not Direction.LOCAL
    ]
    return Fraction(len(allowed), len(minimal))


def _minimal_dag_nodes(mesh: Topology, src: int, dst: int) -> list[int]:
    """All routers on at least one minimal path from ``src`` to ``dst``
    (excluding the destination, where no routing decision remains).

    Walks the topology's productive directions from ``src`` rather than
    enumerating a coordinate rectangle, so it is correct on any
    :class:`Topology` — including torus pairs whose shorter ring path
    crosses a wrap link, where the mesh bounding box would name the
    complementary (non-minimal) node set.  Every productive hop strictly
    decreases ``hop_distance``, so the walk terminates at ``dst``.
    """
    seen = {src}
    frontier = [src]
    nodes: list[int] = []
    while frontier:
        node = frontier.pop()
        if node == dst:
            continue
        nodes.append(node)
        for direction in mesh.minimal_directions(node, dst):
            nbr = mesh.neighbor(node, direction)
            if nbr is not None and nbr not in seen:
                seen.add(nbr)
                frontier.append(nbr)
    nodes.sort()
    return nodes


def mean_port_adaptiveness(
    algorithm: RoutingAlgorithm, mesh: Topology, src: int, dst: int
) -> float:
    """Mean of Eq. 1 over every router on the minimal-path DAG."""
    nodes = _minimal_dag_nodes(mesh, src, dst)
    if not nodes:
        return 1.0
    total = sum(
        port_adaptiveness(algorithm, mesh, n, dst, src) for n in nodes
    )
    return float(total) / len(nodes)


def vc_adaptiveness(
    algorithm: RoutingAlgorithm, num_vcs: int, is_escape_channel: bool = False
) -> Fraction:
    """Eq. 2 for one physical channel under the given algorithm."""
    if isinstance(algorithm, XordetOverlay):
        # Static destination->VC mapping: no VC choice is ever exercised.
        return Fraction(0)
    if isinstance(algorithm, DuatoAdaptiveRouting) or algorithm.uses_escape:
        if is_escape_channel:
            return Fraction(1)
        return Fraction(num_vcs - 1, num_vcs)
    # Oblivious all-VC usage (DOR, Odd-Even): the paper scores this 0
    # because the VCs are not *adaptively* differentiated.
    return Fraction(0)


def qualitative_comparison(
    algorithms: dict[str, RoutingAlgorithm],
    mesh: Topology,
    num_vcs: int,
) -> dict[str, dict[str, float]]:
    """Quantitative backing for Table 1.

    For each algorithm: the mean port adaptiveness over all node pairs and
    the VC adaptiveness of a non-escape channel.
    """
    out: dict[str, dict[str, float]] = {}
    pairs = [
        (s, d)
        for s in range(mesh.num_nodes)
        for d in range(mesh.num_nodes)
        if s != d
    ]
    for name, algo in algorithms.items():
        p_sum = sum(mean_port_adaptiveness(algo, mesh, s, d) for s, d in pairs)
        out[name] = {
            "P_adapt": p_sum / len(pairs),
            "VC_adapt": float(vc_adaptiveness(algo, num_vcs)),
        }
    return out
