"""Streaming latency statistics.

Latency samples are kept as a compact histogram-backed accumulator: mean,
min/max, and exact percentiles over the retained samples.  Sample counts in
this simulator are modest (at most a few hundred thousand packets per run),
so samples are retained exactly; the class still exposes only aggregate
queries so the representation can change without touching callers.
"""

from __future__ import annotations

import math
from typing import Iterable


class LatencyStats:
    """Accumulates latency samples and answers aggregate queries."""

    def __init__(self) -> None:
        self._samples: list[int] = []
        self._sum = 0
        self._sorted = True

    def add(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative latency {value}")
        self._samples.append(value)
        self._sum += value
        self._sorted = False

    def extend(self, values: Iterable[int]) -> None:
        for v in values:
            self.add(v)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            return math.nan
        return self._sum / len(self._samples)

    @property
    def minimum(self) -> int:
        if not self._samples:
            raise ValueError("no samples")
        return min(self._samples)

    @property
    def maximum(self) -> int:
        if not self._samples:
            raise ValueError("no samples")
        return max(self._samples)

    def percentile(self, q: float) -> float:
        """Exact percentile ``q`` in [0, 100] (nearest-rank)."""
        if not self._samples:
            raise ValueError("no samples")
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile {q} outside [0, 100]")
        self._ensure_sorted()
        rank = max(0, math.ceil(q / 100.0 * len(self._samples)) - 1)
        return float(self._samples[rank])

    @property
    def stddev(self) -> float:
        """Sample standard deviation; NaN when empty, like :attr:`mean`.

        A single sample has zero spread (0.0); an empty accumulator has
        *no* spread, and reporting 0.0 there would make a no-deliveries
        run look like a perfectly consistent one.
        """
        n = len(self._samples)
        if n == 0:
            return math.nan
        if n == 1:
            return 0.0
        mean = self.mean
        var = sum((s - mean) ** 2 for s in self._samples) / (n - 1)
        return math.sqrt(var)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def merge(self, other: "LatencyStats") -> None:
        self._samples.extend(other._samples)
        self._sum += other._sum
        self._sorted = False

    # ------------------------------------------------------------------
    def samples(self) -> list[int]:
        """The retained samples (a copy); every aggregate query is
        order-insensitive, so round-tripping through this preserves all
        observable statistics."""
        return list(self._samples)

    @classmethod
    def from_samples(cls, values: Iterable[int]) -> "LatencyStats":
        """Rebuild an accumulator from :meth:`samples` output."""
        stats = cls()
        stats.extend(values)
        return stats

    def __repr__(self) -> str:
        if not self._samples:
            return "LatencyStats(empty)"
        return (
            f"LatencyStats(n={self.count}, mean={self.mean:.2f}, "
            f"p99={self.percentile(99):.0f})"
        )
