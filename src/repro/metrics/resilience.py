"""Resilience metrics for fault-laden runs.

Under faults the sweep module's saturation criterion breaks down: a run
with unreachable destinations never drains its measured packets, so
``SweepPoint.is_saturated`` would call *every* faulted point saturated,
even at loads the degraded network handles comfortably.  This module
replaces "did it drain" with "did it deliver what the faulted topology
can deliver":

* :class:`ResiliencePoint` carries the delivered fraction next to the
  usual latency/throughput numbers;
* a point is *degraded* when its latency diverges (the usual 3x
  zero-load criterion) **or** its delivered fraction falls below
  :data:`DELIVERY_DEGRADATION_FACTOR` times the baseline delivery — the
  fraction the same faulted network achieves at the lowest swept load,
  which accounts for the packets the faults make undeliverable at any
  rate;
* :func:`degraded_saturation_rate` walks an ascending sweep and returns
  the highest non-degraded rate, the fault analogue of saturation
  throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.metrics.sweep import SATURATION_LATENCY_FACTOR
from repro.sim.results import SimulationResult

#: A point's delivered fraction may fall to this multiple of the
#: baseline (lowest-rate) delivery before it counts as degraded.
DELIVERY_DEGRADATION_FACTOR = 0.9


@dataclass(frozen=True)
class ResiliencePoint:
    """One point of a delivered-fraction / latency curve under faults."""

    injection_rate: float
    avg_latency: float
    accepted_rate: float
    delivered_fraction: float

    def is_degraded(
        self, zero_load_latency: float, baseline_delivery: float
    ) -> bool:
        """Whether this point has lost acceptable service.

        ``zero_load_latency`` and ``baseline_delivery`` come from the
        lowest-rate point of the same faulted sweep, so a fixed loss of
        unreachable destinations does not count against higher rates.
        """
        if math.isnan(self.avg_latency):
            return True
        if (
            not math.isnan(baseline_delivery)
            and self.delivered_fraction
            < DELIVERY_DEGRADATION_FACTOR * baseline_delivery
        ):
            return True
        return (
            self.avg_latency > SATURATION_LATENCY_FACTOR * zero_load_latency
        )


def resilience_point(
    result: SimulationResult, rate: float
) -> ResiliencePoint:
    """Summarize a finished simulation as a resilience point."""
    return ResiliencePoint(
        injection_rate=rate,
        avg_latency=result.avg_latency,
        accepted_rate=result.accepted_rate,
        delivered_fraction=result.delivered_fraction,
    )


def degraded_saturation_rate(points: Sequence[ResiliencePoint]) -> float:
    """Highest non-degraded rate of an ascending resilience sweep.

    The first point provides the zero-load latency and baseline delivery
    references.  Returns 0.0 when even the first point is degraded (its
    latency is NaN — nothing was delivered at all).
    """
    if not points:
        return 0.0
    baseline = points[0]
    zero_load = baseline.avg_latency
    baseline_delivery = baseline.delivered_fraction
    if math.isnan(zero_load):
        return 0.0
    last_good = 0.0
    for point in points:
        if point.is_degraded(zero_load, baseline_delivery):
            break
        last_good = point.injection_rate
    return last_good
