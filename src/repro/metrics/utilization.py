"""Per-channel utilization accounting and text heatmaps.

The telemetry hub (or, historically, the engine itself via
``track_utilization``) counts every flit that traverses each output
channel.  :class:`ChannelUtilization` turns those counts into utilization
fractions and renders them as a text heatmap — a quick way to *see* where
a congestion tree sits without a plotting stack.

Counts live in a flat preallocated array indexed by
``node * NUM_PORTS + direction``: :meth:`record` is called once per flit
per hop, making it the hottest metrics call in the simulator, and an
array increment beats the ``dict.get`` upsert it replaced.  The
``(node, direction)``-keyed mapping the analysis code reads is exposed as
the :attr:`counts` property, a thin adapter over the array.
"""

from __future__ import annotations

from repro.topology.base import Topology
from repro.topology.ports import NUM_PORTS, Direction


class ChannelUtilization:
    """Flit counts per output channel, keyed by ``(node, direction)``."""

    __slots__ = ("mesh", "cycles", "_counts")

    def __init__(
        self,
        mesh: Topology,
        cycles: int = 0,
        counts: dict[tuple[int, Direction], int] | None = None,
    ) -> None:
        self.mesh = mesh
        self.cycles = cycles
        self._counts = [0] * (mesh.num_nodes * NUM_PORTS)
        if counts:
            for (node, direction), count in counts.items():
                self._counts[node * NUM_PORTS + direction] = count

    @property
    def counts(self) -> dict[tuple[int, Direction], int]:
        """Nonzero per-channel flit counts as a ``(node, direction)`` map."""
        return {
            (index // NUM_PORTS, Direction(index % NUM_PORTS)): count
            for index, count in enumerate(self._counts)
            if count
        }

    def record(self, node: int, direction: Direction) -> None:
        self._counts[node * NUM_PORTS + direction] += 1

    def count(self, node: int, direction: Direction) -> int:
        """Raw flit count of one channel."""
        return self._counts[node * NUM_PORTS + direction]

    def utilization(self, node: int, direction: Direction) -> float:
        """Fraction of cycles the channel carried a flit (link rate 1)."""
        if self.cycles == 0:
            return 0.0
        return self._counts[node * NUM_PORTS + direction] / self.cycles

    def busiest(self, top: int = 5) -> list[tuple[int, Direction, float]]:
        """The ``top`` most-utilized channels, descending.

        Ties break deterministically by ascending node then direction.
        """
        ranked = sorted(
            (
                (node, direction, self.utilization(node, direction))
                for (node, direction) in self.counts
            ),
            key=lambda item: (-item[2], item[0], int(item[1])),
        )
        return ranked[:top]

    def mean_utilization(self, include_local: bool = False) -> float:
        """Mean utilization over all inter-router channels."""
        channels = self.mesh.channels()
        total = sum(self.utilization(n, d) for n, d, _ in channels)
        count = len(channels)
        if include_local:
            for node in range(self.mesh.num_nodes):
                total += self.utilization(node, Direction.LOCAL)
            count += self.mesh.num_nodes
        return total / count if count else 0.0

    # ------------------------------------------------------------------
    def heatmap(self, direction: Direction = Direction.EAST) -> str:
        """Render a per-node utilization grid for one channel direction.

        Each cell shows the utilization of the node's output channel in
        ``direction`` as a percentage; edge nodes without that channel
        show ``--``.
        """
        lines = [f"channel utilization heatmap ({direction.name})"]
        for y in range(self.mesh.height):
            cells = []
            for x in range(self.mesh.width):
                node = self.mesh.node_at(x, y)
                if (
                    direction is not Direction.LOCAL
                    and self.mesh.neighbor(node, direction) is None
                ):
                    cells.append("  --")
                else:
                    cells.append(
                        f"{100 * self.utilization(node, direction):4.0f}"
                    )
            lines.append(" ".join(cells))
        return "\n".join(lines)
