"""Per-channel utilization accounting and text heatmaps.

The engine (optionally) counts every flit that traverses each output
channel.  :class:`ChannelUtilization` turns those counts into utilization
fractions and renders them as a text heatmap — a quick way to *see* where
a congestion tree sits without a plotting stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.topology.mesh import Mesh2D
from repro.topology.ports import Direction


@dataclass
class ChannelUtilization:
    """Flit counts per output channel, keyed by ``(node, direction)``."""

    mesh: Mesh2D
    cycles: int
    counts: dict[tuple[int, Direction], int] = field(default_factory=dict)

    def record(self, node: int, direction: Direction) -> None:
        key = (node, direction)
        self.counts[key] = self.counts.get(key, 0) + 1

    def utilization(self, node: int, direction: Direction) -> float:
        """Fraction of cycles the channel carried a flit (link rate 1)."""
        if self.cycles == 0:
            return 0.0
        return self.counts.get((node, direction), 0) / self.cycles

    def busiest(self, top: int = 5) -> list[tuple[int, Direction, float]]:
        """The ``top`` most-utilized channels, descending."""
        ranked = sorted(
            (
                (node, direction, self.utilization(node, direction))
                for (node, direction) in self.counts
            ),
            key=lambda item: item[2],
            reverse=True,
        )
        return ranked[:top]

    def mean_utilization(self, include_local: bool = False) -> float:
        """Mean utilization over all inter-router channels."""
        channels = self.mesh.channels()
        total = sum(self.utilization(n, d) for n, d, _ in channels)
        count = len(channels)
        if include_local:
            for node in range(self.mesh.num_nodes):
                total += self.utilization(node, Direction.LOCAL)
            count += self.mesh.num_nodes
        return total / count if count else 0.0

    # ------------------------------------------------------------------
    def heatmap(self, direction: Direction = Direction.EAST) -> str:
        """Render a per-node utilization grid for one channel direction.

        Each cell shows the utilization of the node's output channel in
        ``direction`` as a percentage; edge nodes without that channel
        show ``--``.
        """
        lines = [f"channel utilization heatmap ({direction.name})"]
        for y in range(self.mesh.height):
            cells = []
            for x in range(self.mesh.width):
                node = self.mesh.node_at(x, y)
                if (
                    direction is not Direction.LOCAL
                    and self.mesh.neighbor(node, direction) is None
                ):
                    cells.append("  --")
                else:
                    cells.append(
                        f"{100 * self.utilization(node, direction):4.0f}"
                    )
            lines.append(" ".join(cells))
        return "\n".join(lines)
