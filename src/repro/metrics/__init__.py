"""Measurement utilities: streaming statistics, sweeps, and curves."""

from repro.metrics.stats import LatencyStats
from repro.metrics.sweep import SweepPoint, injection_sweep, saturation_throughput
from repro.metrics.curves import LatencyThroughputCurve

__all__ = [
    "LatencyStats",
    "SweepPoint",
    "injection_sweep",
    "saturation_throughput",
    "LatencyThroughputCurve",
]
