"""Measurement utilities: streaming statistics, sweeps, and curves."""

from repro.metrics.stats import LatencyStats
from repro.metrics.sweep import SweepPoint, injection_sweep, saturation_throughput
from repro.metrics.curves import LatencyThroughputCurve
from repro.metrics.resilience import (
    ResiliencePoint,
    degraded_saturation_rate,
    resilience_point,
)

__all__ = [
    "LatencyStats",
    "SweepPoint",
    "injection_sweep",
    "saturation_throughput",
    "LatencyThroughputCurve",
    "ResiliencePoint",
    "degraded_saturation_rate",
    "resilience_point",
]
