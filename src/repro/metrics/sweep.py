"""Injection-rate sweeps and saturation-throughput measurement.

The paper's latency-throughput figures sweep the offered load and plot
mean packet latency against it; *saturation throughput* is the offered
load at which latency diverges.  Following common BookSim practice, a
point counts as saturated when its mean latency exceeds a multiple of the
zero-load latency (default 3x) or the run fails to drain its measured
packets; the saturation throughput is then refined by bisection between
the last stable and the first saturated point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult

#: Latency multiple over zero-load latency that defines saturation.
SATURATION_LATENCY_FACTOR = 3.0


@dataclass(frozen=True)
class SweepPoint:
    """One point of a latency-throughput curve."""

    injection_rate: float
    avg_latency: float
    accepted_rate: float
    drained: bool

    @property
    def saturated_vs(self) -> Callable[[float], bool]:
        """Saturation predicate given a zero-load latency."""

        def check(zero_load: float) -> bool:
            if not self.drained:
                return True
            if math.isnan(self.avg_latency):
                return True
            return self.avg_latency > SATURATION_LATENCY_FACTOR * zero_load

        return check


def run_point(config: SimulationConfig, rate: float) -> SweepPoint:
    """Simulate one injection rate and summarize it."""
    # Imported here: the engine itself uses repro.metrics for its
    # statistics, so a module-level import would be circular.
    from repro.sim.engine import Simulator

    result = Simulator(config.with_(injection_rate=rate)).run()
    return _to_point(result, rate)


def _to_point(result: SimulationResult, rate: float) -> SweepPoint:
    return SweepPoint(
        injection_rate=rate,
        avg_latency=result.avg_latency,
        accepted_rate=result.accepted_rate,
        drained=result.drained,
    )


def injection_sweep(
    config: SimulationConfig, rates: list[float]
) -> list[SweepPoint]:
    """Simulate every rate in ``rates`` (ascending recommended)."""
    return [run_point(config, r) for r in rates]


def zero_load_latency(config: SimulationConfig, rate: float = 0.005) -> float:
    """Mean latency at a near-zero offered load."""
    point = run_point(config, rate)
    return point.avg_latency


def saturation_throughput(
    config: SimulationConfig,
    start: float = 0.05,
    stop: float = 1.0,
    coarse_step: float = 0.05,
    refine_steps: int = 3,
    zero_load: float | None = None,
) -> float:
    """Find the saturation throughput by coarse scan plus bisection.

    Returns the highest offered load (flits/node/cycle) that is still
    stable.  ``zero_load`` may be supplied to avoid re-measuring it.
    """
    if zero_load is None:
        zero_load = zero_load_latency(config)
    if math.isnan(zero_load):
        raise ValueError("zero-load run produced no packets; raise the rate")

    last_stable = 0.0
    first_saturated = None
    rate = start
    while rate <= stop + 1e-9:
        point = run_point(config, rate)
        if point.saturated_vs(zero_load):
            first_saturated = rate
            break
        last_stable = rate
        rate = round(rate + coarse_step, 10)
    if first_saturated is None:
        return last_stable

    lo, hi = last_stable, first_saturated
    for _ in range(refine_steps):
        mid = (lo + hi) / 2.0
        point = run_point(config, mid)
        if point.saturated_vs(zero_load):
            hi = mid
        else:
            lo = mid
    return lo
