"""Injection-rate sweeps and saturation-throughput measurement.

The paper's latency-throughput figures sweep the offered load and plot
mean packet latency against it; *saturation throughput* is the offered
load at which latency diverges.  Following common BookSim practice, a
point counts as saturated when its mean latency exceeds a multiple of the
zero-load latency (default 3x) or the run fails to drain its measured
packets; the saturation throughput is then refined by bisection between
the last stable and the first saturated point.

Sweeps accept a ``jobs`` argument (see :mod:`repro.harness.parallel`):
the rates of a sweep are independent simulations, so with ``jobs > 1``
they run across worker processes.  ``saturation_throughput`` additionally
runs its coarse scan *speculatively* in parallel — the whole rate ladder
is launched at once and the scan result read off the collected points —
which trades some wasted work above the saturation point for wall-clock
time.  Results are bit-identical to the serial scan in every case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult

#: Latency multiple over zero-load latency that defines saturation.
SATURATION_LATENCY_FACTOR = 3.0


@dataclass(frozen=True)
class SweepPoint:
    """One point of a latency-throughput curve."""

    injection_rate: float
    avg_latency: float
    accepted_rate: float
    drained: bool

    def is_saturated(self, zero_load: float) -> bool:
        """Whether this point is saturated relative to ``zero_load``.

        Raises :class:`ValueError` on a NaN ``zero_load``: a NaN
        reference makes the latency comparison silently False, which
        would classify every drained point as stable and corrupt
        saturation-rate scans downstream.
        """
        if math.isnan(zero_load):
            raise ValueError(
                "zero-load latency is NaN (zero-load run delivered no "
                "measured packets); cannot classify saturation"
            )
        if not self.drained:
            return True
        if math.isnan(self.avg_latency):
            return True
        return self.avg_latency > SATURATION_LATENCY_FACTOR * zero_load


def run_point(config: SimulationConfig, rate: float) -> SweepPoint:
    """Simulate one injection rate and summarize it."""
    # Imported here: the engine itself uses repro.metrics for its
    # statistics, so a module-level import would be circular.
    from repro.sim.engine import Simulator

    result = Simulator(config.with_(injection_rate=rate)).run()
    return point_from_result(result, rate)


def point_from_result(result: SimulationResult, rate: float) -> SweepPoint:
    """Summarize a finished simulation as a sweep point."""
    return SweepPoint(
        injection_rate=rate,
        avg_latency=result.avg_latency,
        accepted_rate=result.accepted_rate,
        drained=result.drained,
    )


def sweep_points(
    config: SimulationConfig,
    rates: list[float],
    jobs: int | str | None = None,
) -> list[SweepPoint]:
    """Simulate every rate, distributing across ``jobs`` workers."""
    from repro.harness.parallel import SimTask, run_tasks

    tasks = [SimTask(config, rate=rate) for rate in rates]
    results = run_tasks(tasks, jobs)
    return [
        point_from_result(result, rate)
        for result, rate in zip(results, rates)
    ]


def injection_sweep(
    config: SimulationConfig,
    rates: list[float],
    jobs: int | str | None = None,
) -> list[SweepPoint]:
    """Simulate every rate in ``rates`` (ascending recommended)."""
    return sweep_points(config, rates, jobs)


def zero_load_latency(config: SimulationConfig, rate: float = 0.005) -> float:
    """Mean latency at a near-zero offered load."""
    point = run_point(config, rate)
    return point.avg_latency


def saturation_throughput(
    config: SimulationConfig,
    start: float = 0.05,
    stop: float = 1.0,
    coarse_step: float = 0.05,
    refine_steps: int = 3,
    zero_load: float | None = None,
    jobs: int | str | None = None,
) -> float:
    """Find the saturation throughput by coarse scan plus bisection.

    Returns the highest offered load (flits/node/cycle) that is still
    stable.  ``zero_load`` may be supplied to avoid re-measuring it.

    With ``jobs > 1`` the coarse scan is speculative: the whole ladder of
    rates runs at once and the first saturated rung is read off the
    results.  The serial scan stops at that rung instead, but inspects
    the same deterministic points, so both return the same value.  The
    bisection refinement is inherently sequential and always runs
    serially.
    """
    from repro.harness.parallel import resolve_jobs

    if zero_load is None:
        zero_load = zero_load_latency(config)
    if math.isnan(zero_load):
        raise ValueError("zero-load run produced no packets; raise the rate")

    ladder: list[float] = []
    rate = start
    while rate <= stop + 1e-9:
        ladder.append(rate)
        rate = round(rate + coarse_step, 10)

    last_stable = 0.0
    first_saturated = None
    if resolve_jobs(jobs) > 1:
        # Speculative parallel scan: launch every rung, then walk the
        # collected points exactly like the serial scan would.
        for point in sweep_points(config, ladder, jobs):
            if point.is_saturated(zero_load):
                first_saturated = point.injection_rate
                break
            last_stable = point.injection_rate
    else:
        for rung in ladder:
            point = run_point(config, rung)
            if point.is_saturated(zero_load):
                first_saturated = rung
                break
            last_stable = rung
    if first_saturated is None:
        return last_stable

    lo, hi = last_stable, first_saturated
    for _ in range(refine_steps):
        mid = (lo + hi) / 2.0
        point = run_point(config, mid)
        if point.is_saturated(zero_load):
            hi = mid
        else:
            lo = mid
    return lo
