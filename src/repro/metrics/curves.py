"""Latency-throughput curve containers and textual rendering.

The benchmark harness prints each figure as an aligned text table — the
same rows/series the paper plots — so results can be inspected and diffed
without a plotting stack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.metrics.sweep import SweepPoint


@dataclass
class LatencyThroughputCurve:
    """One labelled latency-throughput series."""

    label: str
    points: list[SweepPoint] = field(default_factory=list)

    def add(self, point: SweepPoint) -> None:
        self.points.append(point)

    def stable_points(self, zero_load: float) -> list[SweepPoint]:
        return [p for p in self.points if not p.is_saturated(zero_load)]

    def saturation_rate(self, zero_load: float) -> float:
        """Highest stable injection rate on this curve (0.0 if none)."""
        stable = self.stable_points(zero_load)
        if not stable:
            return 0.0
        return max(p.injection_rate for p in stable)


#: Decimal places used to group injection rates into table rows.  Rates
#: refined by bisection can differ from grid rates in the last ulp;
#: exact float comparison would scatter them into separate all-dash rows.
RATE_DECIMALS = 9


def _rate_key(rate: float) -> float:
    return round(rate, RATE_DECIMALS)


def render_curves(
    title: str, curves: list[LatencyThroughputCurve]
) -> str:
    """Render curves as an aligned table: one row per injection rate.

    Rates are grouped after rounding to :data:`RATE_DECIMALS` places, so
    points that differ only by float noise share a row.
    """
    rates = sorted({_rate_key(p.injection_rate) for c in curves for p in c.points})
    header = ["inj_rate"] + [c.label for c in curves]
    widths = [max(10, len(h) + 2) for h in header]
    lines = [title, "".join(h.rjust(w) for h, w in zip(header, widths))]
    for rate in rates:
        row = [f"{rate:.3f}".rjust(widths[0])]
        for curve, width in zip(curves, widths[1:]):
            match = next(
                (
                    p
                    for p in curve.points
                    if _rate_key(p.injection_rate) == rate
                ),
                None,
            )
            if match is None:
                row.append("-".rjust(width))
            elif not match.drained or math.isnan(match.avg_latency):
                row.append("sat".rjust(width))
            else:
                row.append(f"{match.avg_latency:.1f}".rjust(width))
        lines.append("".join(row))
    return "\n".join(lines)


def render_table(
    title: str, header: list[str], rows: list[list[str]]
) -> str:
    """Render a generic aligned text table."""
    widths = [
        max(len(header[i]), max((len(r[i]) for r in rows), default=0)) + 2
        for i in range(len(header))
    ]
    lines = [title, "".join(h.rjust(w) for h, w in zip(header, widths))]
    for row in rows:
        lines.append("".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
