"""Search-driven config auto-tuner over the cached simulation farm.

Footprint's knobs — congestion threshold, footprint VC limit, VC count,
buffer depth, and the routing algorithm itself — interact nonlinearly;
the ablation benchmarks only grid-scan them one axis at a time.  This
package searches the joint space:

* :mod:`repro.tuner.space` — a declarative :class:`ParamSpace` of
  discrete/log axes over :class:`~repro.sim.config.SimulationConfig`
  fields, with deterministic seeded sampling, neighbor enumeration,
  and canonicalization (knobs a routing algorithm never reads are
  normalized away so equivalent candidates share one evaluation);
* :mod:`repro.tuner.objectives` — scenarios (base config + evaluation
  rate ladder), fidelity rungs, and the three objectives scored per
  candidate: average latency, saturation throughput, and the
  :mod:`repro.core.cost` storage model;
* :mod:`repro.tuner.pareto` — exact multi-objective dominance and
  Pareto-frontier extraction plus the deterministic candidate ranking
  the search strategies promote by;
* :mod:`repro.tuner.strategies` — seeded, deterministic search:
  random baseline, successive halving over fidelity rungs, and
  beam/coordinate refinement around the incumbent frontier;
* :mod:`repro.tuner.runner` — the orchestration loop: candidate
  batches evaluate exclusively through
  :func:`repro.harness.parallel.run_tasks`, so the persistent
  :class:`~repro.harness.cache.ResultCache`, the LPT process pool,
  and the ``$REPRO_SERVICE`` job routing all apply for free;
* :mod:`repro.tuner.report` — ``TUNE_*.json`` artifacts and the
  frontier/best-config tables rendered by ``repro tune``.

Budgets are spent in *estimated* cycle-nodes (the shared
:func:`repro.harness.cost.estimate_task_cycles` model), independent of
cache hits, so a warm-cache re-run of any tune replays the exact same
search — same rounds, same survivors, same frontier — with zero fresh
simulations.
"""

from repro.exceptions import ReproError


class TunerError(ReproError):
    """An invalid tuner request (bad space, scenario, budget, strategy)."""


from repro.tuner.objectives import (  # noqa: E402
    OBJECTIVES,
    CandidateEval,
    Objective,
    Rung,
    Scenario,
    config_cost_bits,
)
from repro.tuner.pareto import pareto_frontier, rank_evals  # noqa: E402
from repro.tuner.runner import TuneResult, run_tune  # noqa: E402
from repro.tuner.space import Axis, Candidate, ParamSpace  # noqa: E402

__all__ = [
    "Axis",
    "Candidate",
    "CandidateEval",
    "OBJECTIVES",
    "Objective",
    "ParamSpace",
    "Rung",
    "Scenario",
    "TuneResult",
    "TunerError",
    "config_cost_bits",
    "pareto_frontier",
    "rank_evals",
    "run_tune",
]
