"""Seeded, deterministic search strategies.

Every strategy talks to the runner through a narrow context interface
(:class:`repro.tuner.runner.TuneContext`): ``affordable`` trims a
candidate list to what the remaining budget covers, ``evaluate`` scores
a batch at a fidelity rung (through the cached harness), and
``record_survivors`` annotates the just-finished round with the keys
the strategy promoted — the hook the determinism tests compare across
worker counts and cache temperatures.

Determinism contract: given the same space, scenario, seed, and budget,
a strategy must request the exact same evaluations in the exact same
order regardless of ``--jobs`` or cache state.  That falls out of three
rules every strategy here follows: draw candidates only from seeded
:meth:`ParamSpace.sample`, rank only with :func:`rank_evals` (a total
order on values), and never consult wall-clock time or cache hit/miss
counts when deciding anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.tuner import TunerError
from repro.tuner.objectives import CandidateEval
from repro.tuner.pareto import pareto_frontier, rank_evals

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tuner.runner import TuneContext


class Strategy:
    """Base class: produce full-fidelity evaluations under a budget."""

    name = "strategy"

    def search(self, ctx: "TuneContext") -> list[CandidateEval]:
        raise NotImplementedError


@dataclass
class RandomSearch(Strategy):
    """Seeded random sampling, every candidate at full fidelity."""

    n: int = 16
    name = "random"

    def search(self, ctx: "TuneContext") -> list[CandidateEval]:
        candidates = ctx.space.sample(self.n, ctx.seed, ctx.scenario.base)
        candidates = ctx.affordable(candidates, ctx.full_rung)
        if not candidates:
            return []
        return ctx.evaluate(candidates, ctx.full_rung, "random")


@dataclass
class SuccessiveHalving(Strategy):
    """Promote the top ``1/eta`` through successively richer rungs.

    The initial cohort of ``n0`` seeded samples is scored on the
    cheapest rung; each round keeps ``ceil(len/eta)`` by the
    deterministic :func:`rank_evals` order and re-scores them one rung
    up, finishing with the survivors at full fidelity.  If the budget
    cannot cover a whole round, the *trailing* candidates are dropped
    (rank order again), never a random subset.
    """

    n0: int = 16
    eta: int = 2
    name = "halving"

    def __post_init__(self) -> None:
        if self.n0 < 1:
            raise TunerError(f"halving n0 must be >= 1, got {self.n0}")
        if self.eta < 2:
            raise TunerError(f"halving eta must be >= 2, got {self.eta}")

    def search(self, ctx: "TuneContext") -> list[CandidateEval]:
        candidates = ctx.space.sample(
            self.n0, ctx.seed, ctx.scenario.base
        )
        final: list[CandidateEval] = []
        for rung in ctx.rungs:
            candidates = ctx.affordable(candidates, rung)
            if not candidates:
                break
            evals = ctx.evaluate(
                candidates, rung, f"halving-{rung.name}"
            )
            ranked = rank_evals(evals)
            if rung.full_fidelity:
                final = evals
                ctx.record_survivors(
                    [e.candidate.key() for e in ranked]
                )
                break
            keep = max(1, -(-len(ranked) // self.eta))  # ceil division
            survivors = ranked[:keep]
            ctx.record_survivors([e.candidate.key() for e in survivors])
            candidates = [e.candidate for e in survivors]
        return final


@dataclass
class BeamRefine(Strategy):
    """Hill-climb around the incumbent frontier at full fidelity.

    Each round takes the best ``beam`` evals (by :func:`rank_evals`),
    enumerates their one-step axis neighbors, drops any candidate
    already scored at full fidelity, and evaluates the rest.  Stops
    when a round yields no affordable unseen move.
    """

    rounds: int = 2
    beam: int = 4
    name = "refine"

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise TunerError(
                f"refine rounds must be >= 1, got {self.rounds}"
            )
        if self.beam < 1:
            raise TunerError(f"refine beam must be >= 1, got {self.beam}")

    def refine(
        self, ctx: "TuneContext", evals: list[CandidateEval]
    ) -> list[CandidateEval]:
        all_evals = list(evals)
        seen = {e.candidate for e in all_evals}
        for round_index in range(self.rounds):
            incumbents = rank_evals(all_evals)[: self.beam]
            moves = []
            move_seen = set()
            for incumbent in incumbents:
                for neighbor in ctx.space.neighbors(
                    incumbent.candidate, ctx.scenario.base
                ):
                    if neighbor in seen or neighbor in move_seen:
                        continue
                    move_seen.add(neighbor)
                    moves.append(neighbor)
            moves = ctx.affordable(moves, ctx.full_rung)
            if not moves:
                break
            new_evals = ctx.evaluate(
                moves, ctx.full_rung, f"refine-{round_index + 1}"
            )
            seen.update(e.candidate for e in new_evals)
            all_evals.extend(new_evals)
            ctx.record_survivors(
                [
                    e.candidate.key()
                    for e in pareto_frontier(all_evals)
                ]
            )
        return all_evals

    def search(self, ctx: "TuneContext") -> list[CandidateEval]:
        seeds = ctx.affordable(
            ctx.space.sample(self.beam, ctx.seed, ctx.scenario.base),
            ctx.full_rung,
        )
        if seeds:
            ctx.evaluate(seeds, ctx.full_rung, "refine-seed")
        return self.refine(ctx, ctx.known_full_evals())


@dataclass
class HalvingThenRefine(Strategy):
    """The default pipeline: successive halving, then beam refinement."""

    n0: int = 16
    eta: int = 2
    rounds: int = 2
    beam: int = 4
    name = "halving+refine"

    def search(self, ctx: "TuneContext") -> list[CandidateEval]:
        halving = SuccessiveHalving(n0=self.n0, eta=self.eta)
        halving.search(ctx)
        refine = BeamRefine(rounds=self.rounds, beam=self.beam)
        # Refine from everything known at full fidelity — the halving
        # survivors plus the budget-exempt default baseline — so the
        # default's one-step neighborhood is always explored.
        return refine.refine(ctx, ctx.known_full_evals())


def make_strategy(
    name: str,
    n0: int = 16,
    eta: int = 2,
    refine_rounds: int = 2,
    beam: int = 4,
) -> Strategy:
    """Build a strategy from its CLI name."""
    if name == "random":
        return RandomSearch(n=n0)
    if name == "halving":
        return SuccessiveHalving(n0=n0, eta=eta)
    if name == "refine":
        return HalvingThenRefine(
            n0=n0, eta=eta, rounds=refine_rounds, beam=beam
        )
    raise TunerError(
        f"unknown strategy '{name}' "
        f"(choose from: random, halving, refine)"
    )
