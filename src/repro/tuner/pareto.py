"""Exact multi-objective dominance, frontiers, and candidate ranking.

All comparisons run over *minimized* objective vectors (maximized
objectives are negated by :meth:`CandidateEval.vector`), so dominance
is the plain componentwise order.  The frontier routine is sort-based —
one lexicographic sort, then a single pass checking each point only
against the frontier accumulated so far.  This is correct because if
``d`` dominates ``x`` then ``d`` precedes ``x`` lexicographically, and
dominance is transitive, so any dominator of ``x`` is represented on
the frontier by the time ``x`` is examined.  The property suite checks
this implementation against brute-force pairwise dominance filtering.
"""

from __future__ import annotations

from typing import Sequence

from repro.tuner.objectives import OBJECTIVES, CandidateEval, Objective


def dominates(
    a: Sequence[float], b: Sequence[float]
) -> bool:
    """Whether minimized vector ``a`` Pareto-dominates ``b``.

    ``a`` dominates ``b`` when it is no worse on every objective and
    strictly better on at least one.  Equal vectors do not dominate
    each other.
    """
    if len(a) != len(b):
        raise ValueError(
            f"vector length mismatch: {len(a)} vs {len(b)}"
        )
    no_worse = all(x <= y for x, y in zip(a, b))
    return no_worse and any(x < y for x, y in zip(a, b))


def pareto_indices(vectors: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated points, in input order.

    Sort-based single pass (see module docstring); duplicates of a
    frontier point are all kept — a point only falls when some *other*
    point is strictly better somewhere and no worse everywhere.
    """
    order = sorted(range(len(vectors)), key=lambda i: tuple(vectors[i]))
    frontier: list[int] = []
    for i in order:
        if not any(dominates(vectors[j], vectors[i]) for j in frontier):
            frontier.append(i)
    return sorted(frontier)


def pareto_frontier(
    evals: Sequence[CandidateEval],
    objectives: tuple[Objective, ...] = OBJECTIVES,
) -> list[CandidateEval]:
    """The non-dominated subset of ``evals``, in input order."""
    vectors = [e.vector(objectives) for e in evals]
    return [evals[i] for i in pareto_indices(vectors)]


def rank_evals(
    evals: Sequence[CandidateEval],
    objectives: tuple[Objective, ...] = OBJECTIVES,
) -> list[CandidateEval]:
    """All evals ordered best-first, deterministically.

    Non-dominated sorting: peel successive Pareto layers; within a
    layer, order by the minimized objective vector itself (objective
    order = priority order, so latency leads) with the candidate key
    as the final tie-break.  The result is a total order that depends
    only on the evals' values — never on arrival order — which is what
    lets successive halving promote identical survivors at any worker
    count.
    """
    remaining = list(range(len(evals)))
    vectors = [e.vector(objectives) for e in evals]
    ordered: list[int] = []
    while remaining:
        layer = [
            remaining[k]
            for k in pareto_indices([vectors[i] for i in remaining])
        ]
        layer.sort(
            key=lambda i: (tuple(vectors[i]), evals[i].candidate.key())
        )
        ordered.extend(layer)
        in_layer = set(layer)
        remaining = [i for i in remaining if i not in in_layer]
    return [evals[i] for i in ordered]
