"""Scenarios, fidelity rungs, and the objectives scored per candidate.

A :class:`Scenario` fixes everything the search does *not* touch: the
base :class:`~repro.sim.config.SimulationConfig` (topology, traffic,
seed, full-fidelity cycle counts) and the evaluation rate ladder.  One
candidate evaluation simulates the candidate's config at every rung of
the ladder and reduces the resulting sweep to three objectives:

* ``avg_latency`` (minimize) — mean packet latency at the scenario's
  *latency rate* (a moderate, sub-saturation load);
* ``saturation_throughput`` (maximize) — the best accepted throughput
  over the ladder's stable prefix, the sweep-based estimate of where
  the latency curve diverges (saturated points are classified exactly
  like :mod:`repro.metrics.sweep` does, against the ladder's lowest
  rate as the zero-load reference);
* ``cost_bits`` (minimize) — per-port storage from the
  :mod:`repro.core.cost` model: VC flit buffers plus whatever routing
  state the candidate's algorithm actually needs.

A :class:`Rung` is a fidelity level: a multiplier on the base cycle
counts and optionally a smaller mesh.  Rung configs are ordinary
configs, so **each rung addresses distinct result-cache keys**; only
full-fidelity evaluations may enter a Pareto frontier (the runner
enforces this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.core.cost import CostModel
from repro.harness.parallel import SimTask
from repro.metrics.sweep import SATURATION_LATENCY_FACTOR
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.tuner import TunerError
from repro.tuner.space import Candidate, ParamSpace

#: Flit width assumed by the storage-cost objective (the paper's §4.4
#: example uses 128-bit flit buffers).
FLIT_BITS = 128

#: Floors applied to rung-scaled cycle counts so a probe rung still
#: warms up and measures something.
MIN_WARMUP, MIN_MEASURE, MIN_DRAIN = 10, 20, 50


@dataclass(frozen=True)
class Objective:
    """One scored dimension: its name and optimization direction."""

    name: str
    goal: str  # "min" | "max"

    def __post_init__(self) -> None:
        if self.goal not in ("min", "max"):
            raise TunerError(
                f"objective '{self.name}' goal must be 'min' or 'max'"
            )

    def minimized(self, value: float) -> float:
        """The value mapped so smaller is always better."""
        return -value if self.goal == "max" else value


#: The tuner's objective set, in artifact/report order.
OBJECTIVES: tuple[Objective, ...] = (
    Objective("avg_latency", "min"),
    Objective("saturation_throughput", "max"),
    Objective("cost_bits", "min"),
)


def config_cost_bits(config: SimulationConfig) -> float:
    """Per-port storage cost of ``config`` in bits (minimization target).

    VC flit buffers dominate: ``num_vcs x depth x FLIT_BITS``.  On top,
    congestion-aware algorithms (DBAR, Footprint) need the per-port
    idle-VC counter, and Footprint additionally the destination-owner
    table plus its qualifying state bits — exactly the paper's §4.4
    inventory, taken from :class:`repro.core.cost.CostModel`.
    """
    bits = float(
        config.num_vcs * config.vc_buffer_depth * FLIT_BITS
    )
    base = config.routing.split("+")[0].strip().lower()
    model = CostModel(config.num_nodes, config.num_vcs)
    if base in ("dbar", "footprint"):
        bits += model.idle_counter_bits
    if base == "footprint":
        bits += model.owner_table_bits + model.state_bits
    return bits


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """What the tuner optimizes for: base config + evaluation ladder.

    ``rate_field`` names the config field the ladder sweeps —
    ``injection_rate`` for synthetic patterns, ``hotspot_rate`` for the
    hotspot scenario (its background load stays at the base config's
    value).  ``latency_rate`` must be a ladder member; it defaults to
    the middle rung.
    """

    name: str
    base: SimulationConfig
    rates: tuple[float, ...]
    rate_field: str = "injection_rate"
    latency_rate: float | None = None

    def __post_init__(self) -> None:
        if not self.rates:
            raise TunerError(f"scenario '{self.name}' has an empty ladder")
        if list(self.rates) != sorted(self.rates):
            raise TunerError(
                f"scenario '{self.name}' ladder must ascend: {self.rates}"
            )
        if len(set(self.rates)) != len(self.rates):
            raise TunerError(
                f"scenario '{self.name}' ladder has duplicates: {self.rates}"
            )
        if self.rate_field not in ("injection_rate", "hotspot_rate"):
            raise TunerError(
                f"scenario '{self.name}' rate_field must be "
                f"'injection_rate' or 'hotspot_rate'"
            )
        if self.latency_rate is None:
            object.__setattr__(
                self, "latency_rate", self.rates[len(self.rates) // 2]
            )
        elif self.latency_rate not in self.rates:
            raise TunerError(
                f"scenario '{self.name}' latency rate "
                f"{self.latency_rate} is not on the ladder {self.rates}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "base": self.base.to_dict(),
            "rates": list(self.rates),
            "rate_field": self.rate_field,
            "latency_rate": self.latency_rate,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Scenario":
        return cls(
            name=data["name"],
            base=SimulationConfig.from_dict(data["base"]),
            rates=tuple(data["rates"]),
            rate_field=data.get("rate_field", "injection_rate"),
            latency_rate=data.get("latency_rate"),
        )

    def describe(self) -> str:
        return (
            f"{self.name}: {self.base.width}x{self.base.height} "
            f"{self.base.traffic}, {self.rate_field} ladder "
            f"{'/'.join(f'{r:g}' for r in self.rates)} "
            f"(latency @ {self.latency_rate:g}), seed {self.base.seed}"
        )


#: Default evaluation ladders per traffic kind.
_SYNTHETIC_RATES = (0.02, 0.1, 0.2, 0.35)
_HOTSPOT_RATES = (0.05, 0.15, 0.3, 0.45)


def make_scenario(
    traffic: str,
    width: int = 8,
    warmup: int = 100,
    measure: int = 200,
    drain: int = 450,
    seed: int = 1,
    rates: tuple[float, ...] | None = None,
    latency_rate: float | None = None,
    background_rate: float = 0.3,
    topology: str = "mesh",
) -> Scenario:
    """A standard scenario for one traffic pattern.

    Hotspot scenarios sweep ``hotspot_rate`` with constant background
    load (the Fig. 9 shape); synthetic patterns sweep the injection
    rate.  The base config is otherwise the paper's Table 2 default —
    which is exactly the candidate the tuner's frontier is measured
    against.
    """
    hotspot = traffic == "hotspot"
    base = SimulationConfig(
        width=width,
        topology=topology,
        traffic=traffic,
        injection_rate=0.0 if hotspot else 0.02,
        hotspot_rate=0.05,
        background_rate=background_rate if hotspot else 0.3,
        warmup_cycles=warmup,
        measure_cycles=measure,
        drain_cycles=drain,
        seed=seed,
    )
    suffix = "" if topology == "mesh" else f"-{topology}"
    return Scenario(
        name=f"{traffic}-{width}x{width}{suffix}",
        base=base,
        rates=tuple(rates)
        if rates is not None
        else (_HOTSPOT_RATES if hotspot else _SYNTHETIC_RATES),
        rate_field="hotspot_rate" if hotspot else "injection_rate",
        latency_rate=latency_rate,
    )


# ----------------------------------------------------------------------
# Fidelity rungs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Rung:
    """One fidelity level of the successive-halving ladder."""

    name: str
    cycle_scale: float = 1.0
    width: int | None = None

    def __post_init__(self) -> None:
        if not (0.0 < self.cycle_scale <= 1.0):
            raise TunerError(
                f"rung '{self.name}' cycle scale must be in (0, 1], "
                f"got {self.cycle_scale}"
            )
        if self.width is not None and self.width < 2:
            raise TunerError(f"rung '{self.name}' width must be >= 2")

    @property
    def full_fidelity(self) -> bool:
        return self.cycle_scale == 1.0 and self.width is None

    def apply(self, config: SimulationConfig) -> SimulationConfig:
        """``config`` at this rung's fidelity (distinct cache key)."""
        if self.full_fidelity:
            return config
        overrides: dict[str, Any] = {
            "warmup_cycles": max(
                MIN_WARMUP, round(config.warmup_cycles * self.cycle_scale)
            ),
            "measure_cycles": max(
                MIN_MEASURE, round(config.measure_cycles * self.cycle_scale)
            ),
            "drain_cycles": max(
                MIN_DRAIN, round(config.drain_cycles * self.cycle_scale)
            ),
        }
        if self.width is not None:
            overrides["width"] = self.width
            overrides["height"] = None
        return config.with_(**overrides)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "cycle_scale": self.cycle_scale,
            "width": self.width,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Rung":
        return cls(data["name"], data["cycle_scale"], data.get("width"))


#: The full-fidelity rung every frontier entry must come from.
FULL_RUNG = Rung("full", 1.0)


def default_rungs(base: SimulationConfig) -> tuple[Rung, ...]:
    """Probe (quarter cycles, half mesh) -> half cycles -> full."""
    probe_width = base.width // 2 if base.width >= 8 else None
    return (
        Rung("probe", 0.25, width=probe_width),
        Rung("half", 0.5),
        FULL_RUNG,
    )


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EvalPoint:
    """One ladder rung of one candidate evaluation."""

    rate: float
    avg_latency: float
    accepted_rate: float
    offered_rate: float
    drained: bool
    saturated: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "rate": self.rate,
            "avg_latency": None
            if math.isnan(self.avg_latency)
            else self.avg_latency,
            "accepted_rate": self.accepted_rate,
            "offered_rate": self.offered_rate,
            "drained": self.drained,
            "saturated": self.saturated,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EvalPoint":
        latency = data["avg_latency"]
        return cls(
            rate=data["rate"],
            avg_latency=math.nan if latency is None else latency,
            accepted_rate=data["accepted_rate"],
            offered_rate=data["offered_rate"],
            drained=data["drained"],
            saturated=data["saturated"],
        )


@dataclass(frozen=True)
class CandidateEval:
    """One candidate scored at one fidelity rung."""

    candidate: Candidate
    rung: str
    avg_latency: float
    saturation_throughput: float
    cost_bits: float
    points: tuple[EvalPoint, ...] = field(default=(), repr=False)
    #: The candidate's full config at the scenario's latency rate —
    #: what a leaderboard record or a follow-up run would use.
    config: SimulationConfig | None = field(default=None, repr=False)

    def value(self, objective: str) -> float:
        try:
            return getattr(self, objective)
        except AttributeError:
            raise TunerError(f"unknown objective '{objective}'") from None

    def vector(
        self, objectives: tuple[Objective, ...] = OBJECTIVES
    ) -> tuple[float, ...]:
        """Objective values mapped so smaller is always better."""
        return tuple(
            obj.minimized(self.value(obj.name)) for obj in objectives
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "candidate": [list(item) for item in self.candidate.items],
            "rung": self.rung,
            "objectives": {
                "avg_latency": None
                if math.isinf(self.avg_latency)
                else self.avg_latency,
                "saturation_throughput": self.saturation_throughput,
                "cost_bits": self.cost_bits,
            },
            "points": [point.to_dict() for point in self.points],
            "config": self.config.to_dict()
            if self.config is not None
            else None,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CandidateEval":
        objectives = data["objectives"]
        latency = objectives["avg_latency"]
        return cls(
            candidate=Candidate(
                tuple(
                    (name, value) for name, value in data["candidate"]
                )
            ),
            rung=data["rung"],
            avg_latency=math.inf if latency is None else latency,
            saturation_throughput=objectives["saturation_throughput"],
            cost_bits=objectives["cost_bits"],
            points=tuple(
                EvalPoint.from_dict(point) for point in data["points"]
            ),
            config=SimulationConfig.from_dict(data["config"])
            if data.get("config") is not None
            else None,
        )


def tasks_for(
    scenario: Scenario,
    space: ParamSpace,
    candidate: Candidate,
    rung: Rung,
) -> list[SimTask]:
    """The simulation grid of one candidate evaluation at one rung."""
    config = rung.apply(space.apply(scenario.base, candidate))
    return [
        SimTask(
            config.with_(**{scenario.rate_field: rate}),
            key=(candidate.key(), rung.name, rate),
        )
        for rate in scenario.rates
    ]


def eval_from_results(
    scenario: Scenario,
    candidate: Candidate,
    rung: Rung,
    results: list[SimulationResult],
) -> CandidateEval:
    """Reduce one candidate's ladder of results to a scored evaluation.

    Saturation classification mirrors :class:`repro.metrics.sweep.
    SweepPoint`: the ladder's lowest rate is the zero-load reference;
    a point is saturated when it fails to drain, delivers no measured
    packet, or its latency exceeds ``SATURATION_LATENCY_FACTOR`` times
    the reference.  A NaN reference (the lowest rung delivered
    nothing) saturates everything — the candidate scores worst-case on
    both simulated objectives, deterministically, instead of raising.
    """
    if len(results) != len(scenario.rates):
        raise TunerError(
            f"expected {len(scenario.rates)} results for candidate "
            f"{candidate.key()}, got {len(results)}"
        )
    zero_load = results[0].avg_latency
    points = []
    for rate, result in zip(scenario.rates, results):
        latency = result.avg_latency
        if math.isnan(zero_load):
            saturated = True
        elif not result.drained or math.isnan(latency):
            saturated = True
        else:
            saturated = latency > SATURATION_LATENCY_FACTOR * zero_load
        points.append(
            EvalPoint(
                rate=rate,
                avg_latency=latency,
                accepted_rate=result.accepted_rate,
                offered_rate=result.offered_rate,
                drained=result.drained,
                saturated=saturated,
            )
        )
    stable = []
    for point in points:
        if point.saturated:
            break
        stable.append(point)
    throughput = max(
        (point.accepted_rate for point in stable), default=0.0
    )
    at_latency = points[scenario.rates.index(scenario.latency_rate)]
    latency = at_latency.avg_latency
    latency_config = results[
        scenario.rates.index(scenario.latency_rate)
    ].config
    return CandidateEval(
        candidate=candidate,
        rung=rung.name,
        avg_latency=math.inf if math.isnan(latency) else latency,
        saturation_throughput=throughput,
        cost_bits=config_cost_bits(latency_config),
        points=tuple(points),
        config=latency_config,
    )
