"""Declarative parameter space over :class:`SimulationConfig` fields.

An :class:`Axis` names one config field and the ordered values the
search may assign it; a :class:`ParamSpace` is a tuple of axes plus the
operations every strategy needs: deterministic seeded sampling,
neighbor enumeration (one step along one axis — the move set of the
coordinate/beam refinement), candidate -> config application, and
*canonicalization*.

Canonicalization is what keeps the cached farm small: a candidate whose
routing algorithm never reads the Footprint knobs (``dor`` ignores both
the congestion threshold and the VC limit) is normalized to the axis
defaults for those fields, so the dozens of raw candidates that differ
only in unread knobs collapse onto one config, one cache key, and one
simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterator

from repro.exceptions import ConfigurationError
from repro.sim.config import SimulationConfig
from repro.tuner import TunerError


@dataclass(frozen=True)
class Axis:
    """One searchable config field and its ordered candidate values.

    ``kind`` documents the spacing — ``"discrete"`` for categorical or
    linear ladders, ``"log"`` for multiplicative ones — and is carried
    into artifacts; both kinds behave identically at search time (the
    values tuple is always explicit and ordered, so "one step" is well
    defined either way).  ``default`` is the paper's Table 2 value; it
    is what canonicalization resets unread knobs to, and it must be a
    member of ``values``.
    """

    name: str
    values: tuple[Any, ...]
    default: Any
    kind: str = "discrete"

    def __post_init__(self) -> None:
        if not self.values:
            raise TunerError(f"axis '{self.name}' has no values")
        if len(set(map(repr, self.values))) != len(self.values):
            raise TunerError(f"axis '{self.name}' has duplicate values")
        if self.default not in self.values:
            raise TunerError(
                f"axis '{self.name}' default {self.default!r} is not "
                f"among its values"
            )
        if self.kind not in ("discrete", "log"):
            raise TunerError(
                f"axis '{self.name}' kind must be 'discrete' or 'log', "
                f"got {self.kind!r}"
            )

    @classmethod
    def log_range(
        cls, name: str, lo: int, hi: int, default: int, base: int = 2
    ) -> "Axis":
        """A log-spaced integer axis: ``lo, lo*base, ... <= hi``."""
        if lo < 1 or hi < lo or base < 2:
            raise TunerError(
                f"axis '{name}': need 1 <= lo <= hi and base >= 2, "
                f"got lo={lo} hi={hi} base={base}"
            )
        values = []
        value = lo
        while value <= hi:
            values.append(value)
            value *= base
        if default not in values:
            values = sorted(set(values) | {default})
        return cls(name, tuple(values), default, kind="log")

    def index_of(self, value: Any) -> int:
        try:
            return self.values.index(value)
        except ValueError:
            raise TunerError(
                f"value {value!r} is not on axis '{self.name}' "
                f"(values: {self.values!r})"
            ) from None


@dataclass(frozen=True)
class Candidate:
    """One point of the space: ``((axis_name, value), ...)`` in axis order.

    Hashable and order-stable, so candidates key dicts/sets and sort
    deterministically via :meth:`key`.
    """

    items: tuple[tuple[str, Any], ...]

    def __getitem__(self, name: str) -> Any:
        for key, value in self.items:
            if key == name:
                return value
        raise KeyError(name)

    def overrides(self) -> dict[str, Any]:
        """The config-field overrides this candidate applies."""
        return dict(self.items)

    def key(self) -> str:
        """Stable human-readable identity, e.g. ``num_vcs=4/routing=dor``."""
        return "/".join(f"{name}={value}" for name, value in self.items)

    def with_value(self, name: str, value: Any) -> "Candidate":
        return Candidate(
            tuple(
                (key, value if key == name else old)
                for key, old in self.items
            )
        )


#: Base routing algorithms that read the Footprint-family knobs.
_CONGESTION_AWARE = ("dbar", "footprint")
_FOOTPRINT_BASED = ("footprint",)


def _base_routing(routing: str) -> str:
    return routing.split("+")[0].strip().lower()


class ParamSpace:
    """An ordered set of axes plus the search operations over them."""

    def __init__(self, axes: tuple[Axis, ...] | list[Axis]) -> None:
        self.axes = tuple(axes)
        if not self.axes:
            raise TunerError("a ParamSpace needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise TunerError(f"duplicate axis names: {names}")
        valid = set(SimulationConfig.__dataclass_fields__)
        for name in names:
            if name not in valid:
                raise TunerError(
                    f"axis '{name}' is not a SimulationConfig field"
                )
        self._by_name = {axis.name: axis for axis in self.axes}

    # ------------------------------------------------------------------
    @classmethod
    def default(cls) -> "ParamSpace":
        """The paper's knob set (ISSUE: Table 2 plus §4.2.5's limit).

        Axis defaults are the Table 2 bold values, so the all-defaults
        candidate *is* the paper's default configuration.
        """
        return cls(
            (
                Axis(
                    "congestion_threshold",
                    (0.25, 0.5, 0.75),
                    default=0.5,
                ),
                Axis(
                    "footprint_vc_limit",
                    (None, 1, 2, 4),
                    default=None,
                ),
                Axis(
                    "num_vcs",
                    (2, 4, 6, 8, 10, 16),
                    default=10,
                ),
                Axis.log_range("vc_buffer_depth", 2, 8, default=4),
                Axis(
                    "routing",
                    ("dor", "oddeven", "dbar", "footprint"),
                    default="footprint",
                ),
            )
        )

    # ------------------------------------------------------------------
    def axis(self, name: str) -> Axis:
        try:
            return self._by_name[name]
        except KeyError:
            raise TunerError(f"no axis named '{name}'") from None

    @property
    def size(self) -> int:
        """Number of raw points (before canonical collapsing)."""
        total = 1
        for axis in self.axes:
            total *= len(axis.values)
        return total

    def describe(self) -> str:
        return ", ".join(
            f"{axis.name}[{len(axis.values)}{'/log' if axis.kind == 'log' else ''}]"
            for axis in self.axes
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "axes": [
                {
                    "name": axis.name,
                    "values": list(axis.values),
                    "default": axis.default,
                    "kind": axis.kind,
                }
                for axis in self.axes
            ]
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ParamSpace":
        return cls(
            tuple(
                Axis(
                    entry["name"],
                    tuple(entry["values"]),
                    entry["default"],
                    entry.get("kind", "discrete"),
                )
                for entry in data["axes"]
            )
        )

    # ------------------------------------------------------------------
    # Candidates
    # ------------------------------------------------------------------
    def candidate(self, **values: Any) -> Candidate:
        """Build a candidate; unnamed axes take their defaults."""
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise TunerError(f"unknown axes: {sorted(unknown)}")
        items = []
        for axis in self.axes:
            value = values.get(axis.name, axis.default)
            axis.index_of(value)  # membership check
            items.append((axis.name, value))
        return Candidate(tuple(items))

    def default_candidate(self) -> Candidate:
        """The all-defaults point — the paper's Table 2 configuration."""
        return self.candidate()

    def candidate_from_items(
        self, items: dict[str, Any] | list | tuple
    ) -> Candidate:
        """Rebuild a candidate from serialized ``items`` (artifact I/O)."""
        if not isinstance(items, dict):
            items = dict((name, value) for name, value in items)
        return self.candidate(**items)

    def apply(
        self, base: SimulationConfig, candidate: Candidate
    ) -> SimulationConfig:
        """``base`` with the candidate's overrides (re-validated)."""
        return base.with_(**candidate.overrides())

    def is_valid(
        self, base: SimulationConfig, candidate: Candidate
    ) -> bool:
        """Whether the candidate yields a consistent config over ``base``.

        Invalid combinations (e.g. an escape-channel algorithm with one
        VC) are skipped by sampling/neighbor enumeration rather than
        surfaced as errors — the space is declarative, not every cross
        product is simulable.
        """
        try:
            self.apply(base, candidate)
        except ConfigurationError:
            return False
        return True

    def canonical(self, candidate: Candidate) -> Candidate:
        """Normalize knobs the candidate's routing never reads.

        ``congestion_threshold`` only steers congestion-aware selection
        (DBAR/Footprint); ``footprint_vc_limit`` only Footprint itself.
        For other algorithms those fields are dead config: resetting
        them to the axis defaults makes equivalent candidates identical
        — one cache key, one simulation — without changing semantics.
        """
        routing = None
        for name, value in candidate.items:
            if name == "routing":
                routing = _base_routing(str(value))
        if routing is None:
            return candidate
        out = candidate
        if routing not in _CONGESTION_AWARE and "congestion_threshold" in (
            self._by_name
        ):
            out = out.with_value(
                "congestion_threshold",
                self._by_name["congestion_threshold"].default,
            )
        if routing not in _FOOTPRINT_BASED and "footprint_vc_limit" in (
            self._by_name
        ):
            out = out.with_value(
                "footprint_vc_limit",
                self._by_name["footprint_vc_limit"].default,
            )
        return out

    # ------------------------------------------------------------------
    # Search moves
    # ------------------------------------------------------------------
    def sample(
        self, n: int, seed: int, base: SimulationConfig
    ) -> list[Candidate]:
        """``n`` distinct valid canonical candidates, deterministically.

        Seeded :class:`random.Random` draws uniformly per axis; draws
        that canonicalize onto an already-sampled point or fail config
        validation are rejected and redrawn.  Returns fewer than ``n``
        only when the canonical space is smaller than ``n``.
        """
        if n < 1:
            raise TunerError(f"sample size must be >= 1, got {n}")
        rng = random.Random(seed)
        seen: set[Candidate] = set()
        out: list[Candidate] = []
        # The cap bounds rejection sampling on near-exhausted spaces.
        attempts = 0
        max_attempts = max(200, 50 * n)
        while len(out) < n and attempts < max_attempts:
            attempts += 1
            raw = Candidate(
                tuple(
                    (axis.name, rng.choice(axis.values))
                    for axis in self.axes
                )
            )
            candidate = self.canonical(raw)
            if candidate in seen:
                continue
            if not self.is_valid(base, candidate):
                continue
            seen.add(candidate)
            out.append(candidate)
        return out

    def neighbors(
        self, candidate: Candidate, base: SimulationConfig
    ) -> list[Candidate]:
        """All one-axis single-step moves, valid and canonicalized.

        For each axis the value moves one position up and one down the
        ordered values tuple (categorical axes like ``routing`` treat
        the tuple as a ring would not — endpoints simply have one
        neighbor).  Duplicates after canonicalization collapse; the
        origin itself is never returned.
        """
        origin = self.canonical(candidate)
        seen: set[Candidate] = {origin}
        out: list[Candidate] = []
        for axis in self.axes:
            index = axis.index_of(origin[axis.name])
            for step in (-1, 1):
                other = index + step
                if not (0 <= other < len(axis.values)):
                    continue
                moved = self.canonical(
                    origin.with_value(axis.name, axis.values[other])
                )
                if moved in seen:
                    continue
                seen.add(moved)
                if self.is_valid(base, moved):
                    out.append(moved)
        return out

    def iter_all(self, base: SimulationConfig) -> Iterator[Candidate]:
        """Every valid canonical candidate (small spaces / tests only)."""
        def rec(index: int, acc: list) -> Iterator[Candidate]:
            if index == len(self.axes):
                candidate = self.canonical(Candidate(tuple(acc)))
                yield candidate
                return
            axis = self.axes[index]
            for value in axis.values:
                acc.append((axis.name, value))
                yield from rec(index + 1, acc)
                acc.pop()

        seen: set[Candidate] = set()
        for candidate in rec(0, []):
            if candidate in seen:
                continue
            seen.add(candidate)
            if self.is_valid(base, candidate):
                yield candidate
