"""``TUNE_*.json`` artifacts and the tables ``repro tune`` prints.

An artifact is one self-describing JSON document (schema
``footprint-noc-tune/1``) wrapping :meth:`TuneResult.to_dict` — enough
to re-render the report, re-ingest the frontier into a leaderboard, or
rebuild every frontier config via ``SimulationConfig.from_dict``
without re-running anything.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Any

from repro.tuner import TunerError
from repro.tuner.objectives import OBJECTIVES, CandidateEval
from repro.tuner.pareto import rank_evals
from repro.tuner.runner import TuneResult

TUNE_SCHEMA = "footprint-noc-tune/1"


def tune_payload(result: TuneResult) -> dict[str, Any]:
    """The artifact document for one tune."""
    return {
        "schema": TUNE_SCHEMA,
        "generated_unix": int(time.time()),
        "tune": result.to_dict(),
    }


def write_tune_artifact(
    result: TuneResult,
    out_dir: str | Path,
    filename: str | None = None,
) -> Path:
    """Write ``TUNE_<scenario>_<stamp>.json`` under ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    if filename is None:
        stamp = time.strftime("%Y%m%d-%H%M%S")
        filename = f"TUNE_{result.scenario.name}_{stamp}.json"
    path = out / filename
    path.write_text(
        json.dumps(tune_payload(result), indent=2, sort_keys=True) + "\n"
    )
    return path


def load_tune(path: str | Path) -> TuneResult:
    """Load an artifact back into a :class:`TuneResult`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise TunerError(f"no tune artifact at {path}") from None
    except json.JSONDecodeError as exc:
        raise TunerError(f"{path} is not valid JSON: {exc}") from None
    schema = payload.get("schema")
    if schema != TUNE_SCHEMA:
        raise TunerError(
            f"{path} has schema {schema!r}, expected {TUNE_SCHEMA!r}"
        )
    return TuneResult.from_dict(payload["tune"])


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt(value: float, digits: int = 2) -> str:
    if value is None or (isinstance(value, float) and math.isinf(value)):
        return "inf"
    if isinstance(value, float) and math.isnan(value):
        return "nan"
    return f"{value:.{digits}f}"


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    def line(cells: list[str]) -> str:
        return "  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)
        ).rstrip()

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def _eval_row(evaluation: CandidateEval, tag: str = "") -> list[str]:
    return [
        evaluation.candidate.key(),
        _fmt(evaluation.avg_latency),
        _fmt(evaluation.saturation_throughput, 4),
        _fmt(evaluation.cost_bits, 0),
        tag,
    ]


def render_tune(result: TuneResult) -> str:
    """The human-readable report: frontier, best configs, rounds."""
    lines: list[str] = []
    lines.append(f"tune: {result.scenario.describe()}")
    lines.append(
        f"strategy {result.strategy}, seed {result.seed}, "
        f"space {result.space.describe()}"
    )
    budget = (
        "unlimited"
        if result.budget_cycles is None
        else f"{result.budget_cycles:,}"
    )
    lines.append(
        f"budget {budget} cycle-nodes, spent {result.spent_cycles:,}; "
        f"{result.total_tasks} tasks = "
        f"{result.total_fresh_simulations} simulated + "
        f"{result.total_cache_hits} cache hits"
    )
    lines.append("")

    default_key = result.default_eval.candidate.key()
    dominator_keys = {e.candidate.key() for e in result.dominators}
    lines.append(
        f"Pareto frontier ({len(result.frontier)} of "
        f"{len(result.evals)} full-fidelity configs):"
    )
    rows = []
    for evaluation in rank_evals(result.frontier):
        key = evaluation.candidate.key()
        tags = []
        if key == default_key:
            tags.append("default")
        if key in dominator_keys:
            tags.append("dominates-default")
        rows.append(_eval_row(evaluation, ",".join(tags)))
    headers = [
        "candidate",
        "avg_latency",
        "sat_throughput",
        "cost_bits",
        "notes",
    ]
    lines.append(_table(headers, rows))
    lines.append("")

    lines.append("baseline (paper Table 2 default):")
    lines.append(_table(headers, [_eval_row(result.default_eval)]))
    if result.dominators:
        lines.append(
            f"-> {len(result.dominators)} frontier config(s) dominate "
            f"the default (better on >=1 objective, worse on none)."
        )
    else:
        lines.append(
            "-> no searched config dominates the default outright."
        )
    lines.append("")

    lines.append("best per objective:")
    best_rows = []
    for objective in OBJECTIVES:
        evaluation = result.best(objective.name)
        best_rows.append(
            [objective.name] + _eval_row(evaluation)[:-1]
        )
    lines.append(
        _table(
            ["objective", "candidate", "avg_latency", "sat_throughput",
             "cost_bits"],
            best_rows,
        )
    )
    lines.append("")

    lines.append("rounds:")
    round_rows = [
        [
            stats.label,
            stats.rung,
            str(stats.candidates),
            str(stats.tasks),
            str(stats.fresh_simulations),
            str(stats.cache_hits),
            f"{stats.estimated_cycles:,}",
            f"{stats.seconds:.2f}s",
        ]
        for stats in result.rounds
    ]
    lines.append(
        _table(
            ["round", "rung", "cands", "tasks", "fresh", "hits",
             "est_cycles", "wall"],
            round_rows,
        )
    )
    return "\n".join(lines)
