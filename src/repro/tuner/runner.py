"""The tune orchestration loop: budgeted batch evaluation + results.

:func:`run_tune` wires a strategy to the simulation farm.  Candidate
batches are flattened into :class:`~repro.harness.parallel.SimTask`
grids and executed through :func:`~repro.harness.parallel.
run_tasks_accounted` — so the persistent result cache, the LPT process
pool, and ``$REPRO_SERVICE`` routing all apply without the tuner
knowing about any of them.

Budget accounting is the piece that makes warm-cache re-runs replay
byte-identically: the budget is charged in *estimated* cycle-nodes
(:func:`repro.harness.cost.estimate_task_cycles`, a pure function of
each task's config) for every task **including cache hits**.  Actual
simulation counts are recorded per round for reporting, but no search
decision ever reads them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.harness.cache import ResultCache
from repro.harness.cost import estimate_task_cycles
from repro.harness.parallel import TaskBatchStats, run_tasks_accounted
from repro.tuner import TunerError
from repro.tuner.objectives import (
    OBJECTIVES,
    CandidateEval,
    Rung,
    Scenario,
    default_rungs,
    eval_from_results,
    tasks_for,
)
from repro.tuner.pareto import dominates, pareto_frontier, rank_evals
from repro.tuner.space import Candidate, ParamSpace
from repro.tuner.strategies import Strategy, make_strategy


@dataclass
class RoundStats:
    """One evaluation round (one ``run_tasks`` batch) of a tune."""

    label: str
    rung: str
    candidates: int
    tasks: int
    fresh_simulations: int
    cache_hits: int
    estimated_cycles: int
    spent_cycles_after: int
    seconds: float
    #: Candidate keys the strategy promoted out of this round (filled
    #: by ``record_survivors``; the determinism tests compare these).
    survivors: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "rung": self.rung,
            "candidates": self.candidates,
            "tasks": self.tasks,
            "fresh_simulations": self.fresh_simulations,
            "cache_hits": self.cache_hits,
            "estimated_cycles": self.estimated_cycles,
            "spent_cycles_after": self.spent_cycles_after,
            "seconds": self.seconds,
            "survivors": list(self.survivors),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RoundStats":
        return cls(
            label=data["label"],
            rung=data["rung"],
            candidates=data["candidates"],
            tasks=data["tasks"],
            fresh_simulations=data["fresh_simulations"],
            cache_hits=data["cache_hits"],
            estimated_cycles=data["estimated_cycles"],
            spent_cycles_after=data["spent_cycles_after"],
            seconds=data["seconds"],
            survivors=tuple(data.get("survivors", ())),
        )


class TuneContext:
    """What a :class:`~repro.tuner.strategies.Strategy` sees of the run."""

    def __init__(
        self,
        space: ParamSpace,
        scenario: Scenario,
        rungs: tuple[Rung, ...],
        seed: int,
        budget_cycles: int | None,
        jobs: int | None,
        cache: ResultCache | None,
        engine_mode: str | None,
    ) -> None:
        self.space = space
        self.scenario = scenario
        self.rungs = rungs
        self.seed = seed
        self.budget_cycles = budget_cycles
        self.jobs = jobs
        self.cache = cache
        self.engine_mode = engine_mode
        self.spent_cycles = 0
        self.rounds: list[RoundStats] = []
        #: Full-fidelity memo: first-evaluation order is preserved and
        #: becomes the eval order of the final result.
        self.full_evals: dict[Candidate, CandidateEval] = {}

    # ------------------------------------------------------------------
    @property
    def full_rung(self) -> Rung:
        return self.rungs[-1]

    def _candidate_cost(self, candidate: Candidate, rung: Rung) -> int:
        if rung.full_fidelity and candidate in self.full_evals:
            return 0  # memoized — will not spawn tasks
        return sum(
            estimate_task_cycles(task)
            for task in tasks_for(self.scenario, self.space, candidate, rung)
        )

    def affordable(
        self, candidates: list[Candidate], rung: Rung
    ) -> list[Candidate]:
        """The prefix of ``candidates`` the remaining budget covers.

        Trimming is by position, so a strategy that orders its batch by
        rank loses the *worst* candidates first.  With no budget set,
        everything is affordable.
        """
        if self.budget_cycles is None:
            return list(candidates)
        remaining = self.budget_cycles - self.spent_cycles
        out: list[Candidate] = []
        for candidate in candidates:
            cost = self._candidate_cost(candidate, rung)
            if cost > remaining:
                break
            remaining -= cost
            out.append(candidate)
        return out

    def evaluate(
        self,
        candidates: list[Candidate],
        rung: Rung,
        label: str,
    ) -> list[CandidateEval]:
        """Score a batch at ``rung`` through one harness call.

        Full-fidelity candidates already memoized are returned without
        re-running (and without re-charging the budget); everything
        else becomes one flat task grid.  Results come back in task
        order — the harness guarantees that at any worker count — so
        the per-candidate split below is deterministic.
        """
        todo = [
            c
            for c in candidates
            if not (rung.full_fidelity and c in self.full_evals)
        ]
        started = time.perf_counter()
        stats = TaskBatchStats(0, 0, 0, 0)
        fresh_evals: dict[Candidate, CandidateEval] = {}
        if todo:
            tasks = []
            for candidate in todo:
                tasks.extend(
                    tasks_for(self.scenario, self.space, candidate, rung)
                )
            results, stats = run_tasks_accounted(
                tasks,
                jobs=self.jobs,
                cache=self.cache,
                engine_mode=self.engine_mode,
            )
            width = len(self.scenario.rates)
            for index, candidate in enumerate(todo):
                chunk = results[index * width : (index + 1) * width]
                fresh_evals[candidate] = eval_from_results(
                    self.scenario, candidate, rung, chunk
                )
            self.spent_cycles += stats.estimated_cycles
        out: list[CandidateEval] = []
        for candidate in candidates:
            if candidate in fresh_evals:
                evaluation = fresh_evals[candidate]
            else:
                evaluation = self.full_evals[candidate]
            out.append(evaluation)
            if rung.full_fidelity and candidate not in self.full_evals:
                self.full_evals[candidate] = evaluation
        self.rounds.append(
            RoundStats(
                label=label,
                rung=rung.name,
                candidates=len(candidates),
                tasks=stats.tasks,
                fresh_simulations=stats.fresh_simulations,
                cache_hits=stats.cache_hits,
                estimated_cycles=stats.estimated_cycles,
                spent_cycles_after=self.spent_cycles,
                seconds=time.perf_counter() - started,
            )
        )
        return out

    def record_survivors(self, keys: list[str]) -> None:
        """Annotate the most recent round with the promoted keys."""
        if self.rounds:
            self.rounds[-1].survivors = tuple(keys)

    def known_full_evals(self) -> list[CandidateEval]:
        """Every full-fidelity eval so far, in first-evaluation order.

        Includes the budget-exempt default baseline, so refinement
        strategies seeded from here always explore the neighborhood of
        the paper's default config too.
        """
        return list(self.full_evals.values())


# ----------------------------------------------------------------------
@dataclass
class TuneResult:
    """Everything a tune produced, artifact- and report-ready."""

    scenario: Scenario
    space: ParamSpace
    strategy: str
    seed: int
    budget_cycles: int | None
    spent_cycles: int
    rungs: tuple[Rung, ...]
    rounds: list[RoundStats]
    #: All full-fidelity evaluations, in first-evaluation order.
    evals: list[CandidateEval]
    frontier: list[CandidateEval]
    default_eval: CandidateEval
    #: Frontier entries strictly dominating the default config.
    dominators: list[CandidateEval] = field(default_factory=list)

    @property
    def total_tasks(self) -> int:
        return sum(r.tasks for r in self.rounds)

    @property
    def total_fresh_simulations(self) -> int:
        return sum(r.fresh_simulations for r in self.rounds)

    @property
    def total_cache_hits(self) -> int:
        return sum(r.cache_hits for r in self.rounds)

    def best(self, objective: str = "avg_latency") -> CandidateEval:
        """The frontier entry ranked best (frontier is never empty)."""
        return rank_evals(
            self.frontier,
            tuple(
                sorted(
                    OBJECTIVES,
                    key=lambda o: 0 if o.name == objective else 1,
                )
            ),
        )[0]

    def to_dict(self) -> dict[str, Any]:
        frontier_keys = {e.candidate.key() for e in self.frontier}
        dominator_keys = {e.candidate.key() for e in self.dominators}
        return {
            "scenario": self.scenario.to_dict(),
            "space": self.space.to_dict(),
            "strategy": self.strategy,
            "seed": self.seed,
            "budget_cycles": self.budget_cycles,
            "spent_cycles": self.spent_cycles,
            "rungs": [rung.to_dict() for rung in self.rungs],
            "rounds": [r.to_dict() for r in self.rounds],
            "evals": [e.to_dict() for e in self.evals],
            "frontier": sorted(frontier_keys),
            "dominators": sorted(dominator_keys),
            "default": self.default_eval.to_dict(),
            "totals": {
                "tasks": self.total_tasks,
                "fresh_simulations": self.total_fresh_simulations,
                "cache_hits": self.total_cache_hits,
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TuneResult":
        evals = [CandidateEval.from_dict(e) for e in data["evals"]]
        frontier_keys = set(data["frontier"])
        dominator_keys = set(data["dominators"])
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),
            space=ParamSpace.from_dict(data["space"]),
            strategy=data["strategy"],
            seed=data["seed"],
            budget_cycles=data["budget_cycles"],
            spent_cycles=data["spent_cycles"],
            rungs=tuple(Rung.from_dict(r) for r in data["rungs"]),
            rounds=[RoundStats.from_dict(r) for r in data["rounds"]],
            evals=evals,
            frontier=[
                e for e in evals if e.candidate.key() in frontier_keys
            ],
            default_eval=CandidateEval.from_dict(data["default"]),
            dominators=[
                e for e in evals if e.candidate.key() in dominator_keys
            ],
        )


def run_tune(
    scenario: Scenario,
    space: ParamSpace | None = None,
    strategy: Strategy | str = "refine",
    budget_cycles: int | None = None,
    seed: int = 1,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    engine_mode: str | None = None,
    rungs: tuple[Rung, ...] | None = None,
    n0: int = 16,
    eta: int = 2,
    refine_rounds: int = 2,
    beam: int = 4,
) -> TuneResult:
    """Run one budgeted tune and return its full results.

    The paper-default candidate is always evaluated at full fidelity
    first — budget-exempt — because it is the baseline every frontier
    claim is measured against.  Only full-fidelity evaluations enter
    the frontier; rung-scaled scores exist solely to rank promotions.
    """
    if budget_cycles is not None and budget_cycles <= 0:
        raise TunerError(
            f"budget must be a positive cycle-node count, "
            f"got {budget_cycles}"
        )
    if space is None:
        space = ParamSpace.default()
    if rungs is None:
        rungs = default_rungs(scenario.base)
    if not rungs or not rungs[-1].full_fidelity:
        raise TunerError(
            "the last rung must be full fidelity "
            "(cycle_scale 1.0, no width override)"
        )
    if isinstance(strategy, str):
        strategy = make_strategy(
            strategy, n0=n0, eta=eta, refine_rounds=refine_rounds, beam=beam
        )
    ctx = TuneContext(
        space=space,
        scenario=scenario,
        rungs=tuple(rungs),
        seed=seed,
        budget_cycles=budget_cycles,
        jobs=jobs,
        cache=cache,
        engine_mode=engine_mode,
    )
    default = space.canonical(space.default_candidate())
    spent_before = ctx.spent_cycles
    [default_eval] = ctx.evaluate([default], ctx.full_rung, "default")
    # The baseline is budget-exempt: refund whatever it charged.
    refund = ctx.spent_cycles - spent_before
    if refund:
        ctx.spent_cycles = spent_before
        ctx.rounds[-1].spent_cycles_after = ctx.spent_cycles
    strategy.search(ctx)
    evals = list(ctx.full_evals.values())
    frontier = pareto_frontier(evals)
    default_vector = default_eval.vector()
    dominators = [
        e for e in frontier if dominates(e.vector(), default_vector)
    ]
    return TuneResult(
        scenario=scenario,
        space=space,
        strategy=strategy.name,
        seed=seed,
        budget_cycles=budget_cycles,
        spent_cycles=ctx.spent_cycles,
        rungs=tuple(rungs),
        rounds=ctx.rounds,
        evals=evals,
        frontier=frontier,
        default_eval=default_eval,
        dominators=dominators,
    )
