"""Fig. 9 — hotspot traffic: background latency vs hotspot injection rate.

Background uniform-random traffic runs at a constant 0.3 while the eight
Table 3 hotspot flows sweep their injection rate.  Expected shape (the
paper's headline HoL result): DBAR's background latency collapses at a
much lower hotspot rate than Footprint's — the paper measures saturation
at ~0.39 vs ~0.56, over 40% more sustainable hotspot load.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import fig9_hotspot
from repro.harness.reporting import report_fig9


def test_fig9_hotspot(benchmark, report, scale):
    results = run_once(benchmark, fig9_hotspot, scale, seed=1)
    report(report_fig9(results))

    dbar = dict((r, lat) for r, lat, _ in results["dbar"])
    footprint = dict((r, lat) for r, lat, _ in results["footprint"])

    # At the heaviest hotspot rates, Footprint's background latency stays
    # below DBAR's — HoL blocking from the congestion tree is contained.
    heavy = [r for r in dbar if r >= 0.45]
    assert heavy
    assert sum(footprint[r] for r in heavy) < sum(dbar[r] for r in heavy)

    # Background latency grows with hotspot pressure for both.
    rates = sorted(dbar)
    assert dbar[rates[-1]] > dbar[rates[0]]
    assert footprint[rates[-1]] > footprint[rates[0]]
