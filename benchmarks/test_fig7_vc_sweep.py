"""Fig. 7 — impact of the number of VCs (DBAR vs Footprint).

Sweeps the VC count per physical channel with the paper's values
{2, 4, 8, 16}.  Expected shape: more VCs raise throughput for both
algorithms; Footprint matches or beats DBAR at every VC count.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import fig7_vc_sweep
from repro.harness.reporting import report_fig7


def test_fig7_vc_sweep(benchmark, report, scale):
    def driver():
        return {
            pattern: fig7_vc_sweep(scale, pattern, seed=1)
            for pattern in ("uniform", "transpose")
        }

    results = run_once(benchmark, driver)
    for pattern, sweep in results.items():
        report(report_fig7(sweep, pattern))

        saturations = {}
        for vcs, curves in sweep.items():
            zero_load = min(
                p.avg_latency for c in curves for p in c.points if p.drained
            )
            saturations[vcs] = {
                c.label.split("/")[0]: c.saturation_rate(zero_load)
                for c in curves
            }
        print(f"\nsaturation by VC count ({pattern}): {saturations}")

        vc_counts = sorted(saturations)
        # More VCs never hurt throughput materially (tolerance: one
        # sweep-grid step at bench scale).
        for algo in ("dbar", "footprint"):
            low = saturations[vc_counts[0]][algo]
            high = saturations[vc_counts[-1]][algo]
            assert high >= low - 0.16
        # Footprint >= DBAR at every VC count (bench-scale tolerance).
        for vcs in vc_counts:
            assert (
                saturations[vcs]["footprint"]
                >= saturations[vcs]["dbar"] - 0.16
            )
