"""Fig. 6 — latency-throughput with {1..6}-flit uniformly sized packets.

Same comparison as Fig. 5 with variable packet sizes.  Expected shape:
larger packets raise buffer utilization, closing the gap between
Duato-based algorithms (atomic VC reallocation) and the rest; DOR stays
best on uniform random with Footprint close; Footprint leads the adaptive
algorithms on transpose/shuffle; XORDET degrades the adaptive algorithms.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import fig6_variable_packet_size
from repro.harness.reporting import report_fig5

ALGOS = ("dor", "dbar", "footprint", "dbar+xordet")


def test_fig6_variable_packet_size(benchmark, report, scale):
    results = run_once(
        benchmark,
        fig6_variable_packet_size,
        scale,
        algorithms=ALGOS,
        seed=1,
    )
    report(report_fig5(results, "Fig. 6 — {1..6}-flit packets"))

    for pattern, curves in results.items():
        zero_load = min(
            p.avg_latency for c in curves for p in c.points if p.drained
        )
        sat = {c.label: c.saturation_rate(zero_load) for c in curves}
        print(f"\nsaturation throughputs ({pattern}): {sat}")
        if pattern != "uniform":
            assert sat["footprint"] >= sat["dor"]
            # The static VC restriction costs DBAR throughput here
            # (tolerance: one sweep-grid step).
            assert sat["dbar"] >= sat["dbar+xordet"] - 0.16
