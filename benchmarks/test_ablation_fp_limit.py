"""Ablation — limiting the number of footprint VCs (paper §4.2.5).

The paper leaves a cap on footprint VCs per (port, destination) as future
work: a limit should isolate hotspot flows harder (protecting background
traffic when the network saturates) at some cost in hotspot throughput.
This ablation runs the Fig. 9 hotspot workload with no limit and with
caps of 1 and 2 footprint VCs.
"""

from benchmarks.conftest import run_once
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator

LIMITS = (None, 2, 1)


def run_limit(scale, limit):
    config = SimulationConfig(
        width=scale.width,
        num_vcs=scale.num_vcs,
        routing="footprint",
        traffic="hotspot",
        hotspot_rate=0.6,
        background_rate=0.3,
        footprint_vc_limit=limit,
        warmup_cycles=scale.warmup,
        measure_cycles=scale.measure,
        drain_cycles=scale.drain,
        seed=1,
    )
    return Simulator(config).run()


def test_ablation_footprint_vc_limit(benchmark, report, scale):
    results = run_once(
        benchmark, lambda: {limit: run_limit(scale, limit) for limit in LIMITS}
    )
    lines = ["Ablation — footprint VC limit (hotspot 0.6, background 0.3)"]
    for limit, result in results.items():
        lines.append(
            f"  limit={str(limit):>4s}  background latency = "
            f"{result.flow_latency('background'):8.2f}  "
            f"accepted = {result.accepted_rate:.4f}"
        )
    report("\n".join(lines))

    # Every configuration still delivers traffic; limits remain safe.
    for result in results.values():
        assert result.accepted_rate > 0
        assert result.flow_latency("background") > 0
