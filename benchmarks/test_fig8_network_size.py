"""Fig. 8 — network-size scaling (4x4, 8x8, 16x16 meshes).

Compares DBAR's saturation throughput normalized to Footprint's across
mesh sizes.  Expected shape: the normalized value stays at or below ~1
(Footprint matches or beats DBAR), and Footprint's advantage does not
shrink as the mesh grows — the paper reports it widening, especially for
shuffle.
"""

from dataclasses import replace

from benchmarks.conftest import run_once
from repro.harness.experiments import fig8_network_size
from repro.harness.reporting import report_fig8


def test_fig8_network_size(benchmark, report, scale):
    # A 16x16 mesh simulates 4x the routers of the default; use a reduced
    # sweep to keep the figure within the bench budget.
    fig8_scale = replace(
        scale, rates=tuple(scale.rates[:3]), measure=max(150, scale.measure // 2)
    )
    results = run_once(
        benchmark,
        fig8_network_size,
        fig8_scale,
        widths=(4, 8, 16),
        patterns=("uniform", "shuffle"),
        seed=1,
    )
    report(report_fig8(results))

    for entry in results:
        assert entry.footprint_saturation > 0
        # Footprint matches or beats DBAR at every size (tolerance one
        # sweep step at bench scale).
        assert entry.dbar_normalized <= 1.0 + 0.34
