"""Ablation — atomic vs non-atomic VC reallocation (paper §4.2.1).

Duato-based algorithms must hold a downstream VC until the tail flit's
credit returns; Odd-Even and DOR reallocate as soon as the tail is sent.
The paper cites this as the reason Odd-Even achieves higher buffer
utilization than DBAR under uniform traffic.  This ablation measures that
utilization gap directly: Odd-Even (non-atomic, partially adaptive) vs
DBAR (atomic, fully adaptive) vs a deliberately *non-atomic* DBAR variant
that is NOT deadlock-safe in general but quantifies the cost of atomicity
on a load where it happens to drain.
"""

import pytest

from benchmarks.conftest import run_once
from repro.routing.dbar import DbarRouting
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
import repro.routing.registry as registry


class DbarNonAtomic(DbarRouting):
    """DBAR with non-atomic reallocation — measurement-only variant."""

    name = "dbar-nonatomic"
    atomic_vc_reallocation = False


@pytest.fixture
def register_variant():
    registry._BASE_FACTORIES["dbar-nonatomic"] = DbarNonAtomic
    yield
    registry._BASE_FACTORIES.pop("dbar-nonatomic", None)


def run_algo(scale, routing, rate=0.35):
    config = SimulationConfig(
        width=scale.width,
        num_vcs=scale.num_vcs,
        routing=routing,
        traffic="uniform",
        injection_rate=rate,
        packet_size=3,  # multi-flit: atomicity holds VCs visibly longer
        warmup_cycles=scale.warmup,
        measure_cycles=scale.measure,
        drain_cycles=scale.drain,
        seed=1,
    )
    try:
        return Simulator(config).run()
    except Exception as exc:  # non-atomic Duato is not deadlock-safe
        return exc


def test_ablation_atomic_vc_reallocation(
    benchmark, report, scale, register_variant
):
    algos = ("oddeven", "dbar", "dbar-nonatomic")
    results = run_once(
        benchmark, lambda: {a: run_algo(scale, a) for a in algos}
    )
    lines = ["Ablation — atomic VC reallocation (uniform 0.35, 3-flit)"]
    for algo, result in results.items():
        if isinstance(result, Exception):
            lines.append(f"  {algo:15s}  FAILED: {result}")
        else:
            lines.append(
                f"  {algo:15s}  latency = {result.avg_latency:8.2f}  "
                f"accepted = {result.accepted_rate:.4f}  "
                f"drained = {result.drained}"
            )
    report("\n".join(lines))

    # The safe configurations must deliver traffic; the non-atomic DBAR
    # variant either recovers latency (the §4.2.1 utilization effect) or
    # demonstrates *why* atomicity is required by deadlocking — both
    # outcomes are informative, so only report it.
    assert results["oddeven"].accepted_rate > 0
    assert results["dbar"].accepted_rate > 0
    nonatomic = results["dbar-nonatomic"]
    if not isinstance(nonatomic, Exception):
        assert nonatomic.accepted_rate > 0
