"""Table 1 — two-level adaptiveness of each routing algorithm.

Regenerates the quantitative backing of the paper's qualitative table:
port adaptiveness (Eq. 1, averaged over all node pairs of an 8x8 mesh)
and VC adaptiveness (Eq. 2) per algorithm.  Expected shape: DOR lowest
port adaptiveness, Odd-Even in between, DBAR/Footprint fully adaptive;
only Duato-based algorithms score nonzero VC adaptiveness.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import table1_adaptiveness
from repro.harness.reporting import report_table1


def test_table1_adaptiveness(benchmark, report):
    table = run_once(benchmark, table1_adaptiveness, width=8, num_vcs=10)
    report(report_table1(table))

    assert table["footprint"]["P_adapt"] == 1.0
    assert table["dbar"]["P_adapt"] == 1.0
    assert table["dor"]["P_adapt"] < table["oddeven"]["P_adapt"] < 1.0
    assert table["footprint"]["VC_adapt"] == 0.9
    assert table["dor"]["VC_adapt"] == 0.0
    assert table["dbar+xordet"]["VC_adapt"] == 0.0
