#!/usr/bin/env python
"""Benchmark the simulation engine, the result cache, and the pool layer.

Eight measurements, written to ``BENCH_<timestamp>.json``:

* **engine** — single-simulation cycles/sec for a fixed config matrix,
  comparing four engine modes: ``vector`` (the structure-of-arrays
  batch core), ``skip`` (idle-cycle skipping on top of the active-set
  scheduler, the default), ``fast`` (active-set scheduler only), and
  ``legacy`` (the original every-router loop, kept in-tree for exactly
  this before/after comparison).  All four modes produce bit-identical
  results; the harness asserts it on every run.  The matrix emphasizes
  low offered loads because that is where saturation studies spend most
  of their runs (the whole sub-saturation ladder plus the zero-load
  reference) and where quiescence-based skipping pays off; entries at
  or below ``ZERO_LOAD_RATE`` form the ``zero_load`` summary bucket.
  ``vector_speedup`` is vector vs skip — the number to watch for the
  vector core.  ``--stage-times`` additionally records per-stage wall
  time of one instrumented vector run per entry (a separate diagnostic
  run; off by default because the timing wrappers add overhead).

* **auto** — ``engine_mode="auto"`` timed against both engines it
  arbitrates at the zero-load and saturation anchors, asserting
  bit-identical results and recording which engine it resolved to;
  ``auto_speedup`` (auto vs skip) should sit at ~1.0 at zero load and
  track ``vector_speedup`` at saturation.

* **baseline** — the same matrix timed against the *pre-optimization
  tree*: the repo's root commit is checked out into a temporary git
  worktree and each config is timed there in a subprocess.  This is the
  true before/after number, free of the shared-gains bias above.
  Skipped (with a note) when git or the worktree is unavailable.

* **cache** — one sweep grid executed twice against a fresh cache
  directory: a cold pass that simulates and stores every point, then a
  warm pass that must complete with **zero simulations** (asserted via
  the cache's miss counter) and point-for-point identical results.

* **parallel** — wall-clock for one sweep grid executed serially
  (``jobs=1``) and through the process pool, with a point-by-point
  equality check between both result lists.  The pool chunks tasks into
  one cost-balanced batch per worker (one submission each), so its
  overhead is bounded by worker startup rather than per-task
  round-trips.  On a multi-CPU machine the run **asserts**
  ``speedup > 1``; on a single-CPU machine true speedup is impossible
  (the pool can only add overhead), so the assertion is recorded as
  skipped instead.

* **telemetry** — the cost of observation.  Each config is timed with
  telemetry off (no hub, the ``tel is None`` fast path), with sampling
  on, and with full flit tracing on; simulated results must be
  bit-identical in all three.  The matrix is also timed against the
  *overhead baseline* — by default ``HEAD``, i.e. the previous PR's
  tip, checked out into a git worktree — and the run **asserts** that
  the working tree's disabled-probe overhead vs that tree stays under
  ``TELEMETRY_OVERHEAD_BUDGET`` (2%) geomean.  This is a **per-PR
  delta** gate: each PR may add at most the budget on top of the tree
  it grew from (fixed historical revisions would instead accumulate
  every PR's cost and eventually exceed any budget).
  ``--overhead-baseline-rev`` re-aims the gate (e.g. at a merge base);
  the comparison is skipped (with a note) under ``--no-baseline`` or
  when git is unavailable.

* **validate** — the cost of runtime invariant checking.  Each config is
  timed with validation off (the ``val is None`` fast path) and with
  every checker of :mod:`repro.validate` on; simulated results must be
  bit-identical in both.  The matrix is also timed against the same
  per-PR overhead baseline, and the run **asserts** that the
  disabled-hook overhead stays under ``VALIDATE_OVERHEAD_BUDGET`` (2%)
  geomean.  Skipped notes as above.

* **tuner** — a tiny budgeted ``repro tune`` (successive halving plus
  one refinement round) executed twice against a fresh cache: the cold
  pass simulates every evaluation, and the warm pass must replay the
  **identical search** — same frontier, same per-round survivors —
  with **zero fresh simulations**, because tune budgets are charged in
  estimated cycle-nodes rather than actual simulation work.  Both
  properties are asserted on every run.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py           # full matrix
    PYTHONPATH=src python benchmarks/run_bench.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/run_bench.py --jobs 4
"""

from __future__ import annotations

import argparse
import json
import math
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

if __name__ == "__main__" and __package__ is None:
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.harness.parallel import SimTask, resolve_jobs, run_tasks
from repro.metrics.sweep import point_from_result
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.telemetry import TelemetryConfig

#: (width, routing, injection rate) — zero-load points first (rates at or
#: below ``ZERO_LOAD_RATE`` form the ``zero_load`` summary bucket; they
#: correspond to the zero-load latency references of the figure sweeps,
#: where the network is quiescent almost every cycle), then the climb to
#: saturation.
ENGINE_MATRIX = (
    (8, "footprint", 0.0001),
    (8, "dor", 0.0002),
    (16, "footprint", 0.0001),
    (8, "footprint", 0.001),
    (8, "footprint", 0.02),
    (8, "footprint", 0.05),
    (8, "footprint", 0.3),
    (16, "footprint", 0.05),
)

QUICK_MATRIX = (
    (8, "footprint", 0.0002),
    (8, "footprint", 0.02),
    # The saturation anchor: kept in the quick matrix so the CI smoke
    # can guard the vector/skip ratio where the vector core matters.
    (8, "footprint", 0.3),
)

ZERO_LOAD_RATE = 0.0002

#: The saturation point of the engine matrix — the anchor the auto
#: section and the CI perf-regression smoke key on.
SATURATION_POINT = (8, "footprint", 0.3)

#: Torus configs for the cross-engine identity section.  Loaded points
#: (but not the mesh saturation anchor's triple — the perf-regression
#: guard first-matches entries by (width, routing, rate) and must keep
#: keying on the mesh entry): wrap links and dateline escape VCs are
#: exercised hardest when the network is busy.
TORUS_MATRIX = (
    (8, "dor", 0.2),
    (8, "footprint", 0.2),
)
QUICK_TORUS_MATRIX = (
    (8, "footprint", 0.2),
)

PARALLEL_RATES = (0.05, 0.1, 0.15, 0.2)
QUICK_PARALLEL_RATES = (0.05, 0.15)

CACHE_RATES = (0.01, 0.02, 0.05, 0.1)
QUICK_CACHE_RATES = (0.01, 0.05)

#: Configs timed with telemetry off / sampling / tracing.  Loaded points
#: dominate: that is where probes fire most and overhead shows first.
TELEMETRY_MATRIX = (
    (8, "footprint", 0.0002),
    (8, "footprint", 0.02),
    (8, "footprint", 0.05),
    (8, "dor", 0.05),
)
QUICK_TELEMETRY_MATRIX = (
    (8, "footprint", 0.02),
)

#: Default revision the overhead gates compare against: the committed
#: tip the working tree grew from.  The gates measure the *per-PR*
#: cost delta, not the total since some fixed historical commit —
#: fixed anchors accumulate every intervening PR's cost and eventually
#: bust any budget regardless of what the current change did.
#: ``--overhead-baseline-rev`` overrides (e.g. with a merge base).
OVERHEAD_BASELINE_REV = "HEAD"

#: Maximum acceptable geomean slowdown of a telemetry-off run vs the
#: overhead-baseline tree (fraction; 0.02 = 2%).
TELEMETRY_OVERHEAD_BUDGET = 0.02

#: Configs timed with invariant validation off vs all checkers on.  Same
#: emphasis as the telemetry matrix: loaded points are where the checker
#: hook sites fire most.
VALIDATE_MATRIX = (
    (8, "footprint", 0.0002),
    (8, "footprint", 0.02),
    (8, "footprint", 0.05),
    (8, "dor", 0.05),
)
QUICK_VALIDATE_MATRIX = (
    (8, "footprint", 0.02),
)

#: Maximum acceptable geomean slowdown of a validation-off run vs the
#: overhead-baseline tree (fraction; 0.02 = 2%).
VALIDATE_OVERHEAD_BUDGET = 0.02


def _bench_config(
    width: int,
    routing: str,
    rate: float,
    quick: bool,
    topology: str = "mesh",
):
    cycles = (100, 200, 500) if quick else (200, 400, 1000)
    return SimulationConfig(
        width=width,
        topology=topology,
        routing=routing,
        injection_rate=rate,
        warmup_cycles=cycles[0],
        measure_cycles=cycles[1],
        drain_cycles=cycles[2],
        seed=1,
    )


def _result_signature(result):
    return (
        result.cycles_run,
        result.accepted_flits,
        result.offered_flits,
        result.measured_ejected,
        tuple(result.latency._samples),
    )


def _time_mode(config: SimulationConfig, mode: str, reps: int):
    """Best-of-``reps`` cycles/sec plus the result signature."""
    best = 0.0
    signature = None
    for _ in range(reps):
        sim = Simulator(config, engine_mode=mode)
        t0 = time.perf_counter()
        result = sim.run()
        elapsed = time.perf_counter() - t0
        best = max(best, result.cycles_run / elapsed)
        signature = _result_signature(result)
    return best, signature


def _stage_times_us(config: SimulationConfig) -> dict | None:
    """Per-stage wall time of one instrumented vector run, µs/cycle.

    Instrumentation wraps every stage method in a timing closure, so the
    run is *not* comparable to the uninstrumented timings above — it is
    a separate diagnostic run whose absolute numbers carry the wrapper
    overhead.  Returns ``None`` when the config fell back to ``skip``
    (scalar engines have no per-stage hook points).
    """
    sim = Simulator(config, engine_mode="vector")
    if sim.engine_mode != "vector":
        return None
    sim.collect_stage_times = True
    result = sim.run()
    cycles = max(result.cycles_run, 1)
    assert sim.stage_times is not None
    return {
        stage: round(seconds * 1e6 / cycles, 1)
        for stage, seconds in sim.stage_times.items()
    }


def bench_engine(quick: bool, reps: int, stage_times: bool = False) -> dict:
    matrix = QUICK_MATRIX if quick else ENGINE_MATRIX
    entries = []
    for width, routing, rate in matrix:
        config = _bench_config(width, routing, rate, quick)
        vector_cps, vector_sig = _time_mode(config, "vector", reps)
        skip_cps, skip_sig = _time_mode(config, "skip", reps)
        fast_cps, fast_sig = _time_mode(config, "fast", reps)
        legacy_cps, legacy_sig = _time_mode(config, "legacy", reps)
        if not (vector_sig == skip_sig == fast_sig == legacy_sig):
            raise AssertionError(
                f"vector/skip/fast/legacy results diverge for "
                f"{width}x{width} {routing} @ {rate}"
            )
        speedup = skip_cps / legacy_cps
        vector_speedup = vector_cps / skip_cps
        entry = {
            "width": width,
            "routing": routing,
            "injection_rate": rate,
            "vector_cycles_per_sec": round(vector_cps, 1),
            "skip_cycles_per_sec": round(skip_cps, 1),
            "fast_cycles_per_sec": round(fast_cps, 1),
            "legacy_cycles_per_sec": round(legacy_cps, 1),
            "speedup": round(speedup, 3),
            "fast_speedup": round(fast_cps / legacy_cps, 3),
            "vector_speedup": round(vector_speedup, 3),
            "results_identical": True,
            # For the baseline cross-check (signature = cycles_run,
            # accepted flits, offered flits, ejected, samples).
            "cycles_run": skip_sig[0],
            "accepted_flits": skip_sig[1],
        }
        if stage_times:
            entry["stage_times_us_per_cycle"] = _stage_times_us(config)
        entries.append(entry)
        print(
            f"  {width}x{width} {routing:10s} rate={rate:<7} "
            f"vector={vector_cps:8.0f} skip={skip_cps:8.0f} "
            f"fast={fast_cps:8.0f} legacy={legacy_cps:8.0f} c/s  "
            f"skip/legacy {speedup:.2f}x  vector/skip "
            f"{vector_speedup:.2f}x"
        )

    def geomean(values):
        return math.exp(sum(math.log(v) for v in values) / len(values))

    speedups = [e["speedup"] for e in entries]
    vector_speedups = [e["vector_speedup"] for e in entries]
    zero_load = [
        e["speedup"]
        for e in entries
        if e["injection_rate"] <= ZERO_LOAD_RATE + 1e-9
    ]
    # The vector core amortizes numpy batch overhead over the number of
    # concurrently-routing packets, so it crosses over: slower than skip
    # on (near-)quiescent runs, faster on loaded ones.  Report the
    # loaded bucket separately so the crossover is visible, not averaged
    # away.
    loaded_vector = [
        e["vector_speedup"]
        for e in entries
        if e["injection_rate"] > ZERO_LOAD_RATE + 1e-9
    ] or vector_speedups
    return {
        "reps": reps,
        "matrix": entries,
        "summary": {
            "geomean_speedup": round(geomean(speedups), 3),
            "zero_load_geomean_speedup": round(geomean(zero_load), 3),
            "max_speedup": round(max(speedups), 3),
            "geomean_vector_speedup": round(geomean(vector_speedups), 3),
            "loaded_geomean_vector_speedup": round(
                geomean(loaded_vector), 3
            ),
            "max_vector_speedup": round(max(vector_speedups), 3),
        },
    }


def bench_auto(quick: bool, reps: int) -> dict:
    """Time ``engine_mode="auto"`` against both engines it arbitrates.

    Two anchor points: the zero-load reference (where idle-skipping wins
    and ``auto`` must resolve to ``skip``) and the saturation point
    (where the vector core wins and ``auto`` must resolve to
    ``vector``).  For each, all three modes are timed and must produce
    bit-identical signatures; the number to watch is ``auto_speedup``
    (auto vs skip), which should sit at ~1.0 at zero load and match
    ``vector_speedup`` at saturation — the "never loses" contract,
    modulo timing noise.
    """
    from repro.sim.engine import (
        AUTO_ACTIVITY_THRESHOLD,
        AUTO_THRESHOLD_ENV,
        resolve_auto_mode,
    )

    anchors = (
        (8, "footprint", ZERO_LOAD_RATE, "zero_load"),
        (*SATURATION_POINT, "saturation"),
    )
    entries = []
    for width, routing, rate, label in anchors:
        config = _bench_config(width, routing, rate, quick)
        resolved = resolve_auto_mode(config)
        # Zero-load runs finish in milliseconds, so single-rep timing is
        # all jitter; extra best-of reps there are free and keep the
        # auto-vs-skip comparison (same engine on both sides) honest.
        anchor_reps = max(reps, 5) if label == "zero_load" else reps
        auto_cps, auto_sig = _time_mode(config, "auto", anchor_reps)
        skip_cps, skip_sig = _time_mode(config, "skip", anchor_reps)
        vector_cps, vector_sig = _time_mode(config, "vector", anchor_reps)
        if not (auto_sig == skip_sig == vector_sig):
            raise AssertionError(
                f"auto/skip/vector results diverge for {width}x{width} "
                f"{routing} @ {rate}"
            )
        entries.append(
            {
                "anchor": label,
                "width": width,
                "routing": routing,
                "injection_rate": rate,
                "resolved_mode": resolved,
                "auto_cycles_per_sec": round(auto_cps, 1),
                "skip_cycles_per_sec": round(skip_cps, 1),
                "vector_cycles_per_sec": round(vector_cps, 1),
                "auto_speedup": round(auto_cps / skip_cps, 3),
                "results_identical": True,
            }
        )
        print(
            f"  {label:10s} {width}x{width} {routing} rate={rate:<7} "
            f"-> {resolved:6s}  auto={auto_cps:8.0f} skip={skip_cps:8.0f} "
            f"vector={vector_cps:8.0f} c/s  auto/skip "
            f"{auto_cps / skip_cps:.2f}x"
        )
    return {
        "reps": reps,
        "activity_threshold": AUTO_ACTIVITY_THRESHOLD,
        "threshold_env": AUTO_THRESHOLD_ENV,
        "matrix": entries,
        "summary": {
            e["anchor"] + "_auto_speedup": e["auto_speedup"]
            for e in entries
        },
    }


def bench_torus(quick: bool, reps: int) -> dict:
    """Cross-engine identity and drain on the 2D torus.

    The scalar engines (skip/fast/legacy) must stay bit-identical on
    wrap links and dateline escape VCs exactly as they do on the mesh,
    every run must drain (the dateline argument is the deadlock-freedom
    story — a hung drain here is a routing bug, not noise), and the
    vector core must refuse the topology loudly with a field-named
    fallback reason rather than silently computing mesh routes.
    """
    from repro.sim.vector import vector_unsupported_reason

    matrix = QUICK_TORUS_MATRIX if quick else TORUS_MATRIX
    entries = []
    for width, routing, rate in matrix:
        config = _bench_config(width, routing, rate, quick, topology="torus")
        reason = vector_unsupported_reason(config)
        if reason is None or "config.topology" not in reason:
            raise AssertionError(
                f"vector core accepted a torus config (fallback reason: "
                f"{reason!r}); it must name config.topology"
            )
        skip_cps, skip_sig = _time_mode(config, "skip", reps)
        fast_cps, fast_sig = _time_mode(config, "fast", reps)
        legacy_cps, legacy_sig = _time_mode(config, "legacy", reps)
        if not (skip_sig == fast_sig == legacy_sig):
            raise AssertionError(
                f"skip/fast/legacy results diverge on torus for "
                f"{width}x{width} {routing} @ {rate}"
            )
        result = Simulator(config, engine_mode="skip").run()
        if not result.drained:
            raise AssertionError(
                f"torus run failed to drain for {width}x{width} "
                f"{routing} @ {rate} — dateline escape VCs are not "
                f"breaking the wrap-link cycle"
            )
        entries.append(
            {
                "width": width,
                "routing": routing,
                "injection_rate": rate,
                "topology": "torus",
                "skip_cycles_per_sec": round(skip_cps, 1),
                "fast_cycles_per_sec": round(fast_cps, 1),
                "legacy_cycles_per_sec": round(legacy_cps, 1),
                "speedup": round(skip_cps / legacy_cps, 3),
                "vector_fallback": reason,
                "drained": True,
                "results_identical": True,
                "cycles_run": skip_sig[0],
                "accepted_flits": skip_sig[1],
            }
        )
        print(
            f"  {width}x{width} torus {routing:10s} rate={rate:<7} "
            f"skip={skip_cps:8.0f} fast={fast_cps:8.0f} "
            f"legacy={legacy_cps:8.0f} c/s  skip/legacy "
            f"{skip_cps / legacy_cps:.2f}x  drained=True"
        )
    return {
        "reps": reps,
        "matrix": entries,
        "summary": {
            "geomean_speedup": round(
                _geomean([e["speedup"] for e in entries]), 3
            ),
            "all_drained": True,
            "results_identical": True,
        },
    }


_CHILD_TIMER = """\
import json, sys, time
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator

params = json.loads(sys.argv[1])
reps = params.pop("reps")
config = SimulationConfig(**params)
best = 0.0
result = None
for _ in range(reps):
    sim = Simulator(config)
    t0 = time.perf_counter()
    result = sim.run()
    best = max(best, result.cycles_run / (time.perf_counter() - t0))
print(json.dumps({
    "cps": best,
    "cycles_run": result.cycles_run,
    "accepted_flits": result.accepted_flits,
    "avg_latency": result.avg_latency,
}))
"""


def _time_in_tree(tree: Path, config: SimulationConfig, reps: int) -> dict:
    """Time ``config`` with the simulator from another source tree."""
    params = {
        "width": config.width,
        "routing": config.routing,
        "injection_rate": config.injection_rate,
        "warmup_cycles": config.warmup_cycles,
        "measure_cycles": config.measure_cycles,
        "drain_cycles": config.drain_cycles,
        "seed": config.seed,
        "reps": reps,
    }
    env = dict(os.environ, PYTHONPATH=str(tree / "src"))
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_TIMER, json.dumps(params)],
        capture_output=True,
        text=True,
        env=env,
        cwd=tree,
        check=True,
        timeout=600,
    )
    return json.loads(proc.stdout)


def bench_baseline(quick: bool, reps: int, engine: dict) -> dict:
    """Time the matrix on the repo's root commit (the seed tree)."""
    repo = Path(__file__).resolve().parent.parent
    try:
        rev = subprocess.run(
            ["git", "rev-list", "--max-parents=0", "HEAD"],
            capture_output=True,
            text=True,
            cwd=repo,
            check=True,
            timeout=60,
        ).stdout.split()[0]
    except (subprocess.SubprocessError, OSError, IndexError) as exc:
        print(f"  skipped: cannot resolve root commit ({exc})")
        return {"skipped": str(exc)}

    entries = []
    with tempfile.TemporaryDirectory(prefix="bench-baseline-") as tmp:
        tree = Path(tmp) / "tree"
        try:
            subprocess.run(
                ["git", "worktree", "add", "--detach", str(tree), rev],
                capture_output=True,
                text=True,
                cwd=repo,
                check=True,
                timeout=120,
            )
        except (subprocess.SubprocessError, OSError) as exc:
            print(f"  skipped: cannot create worktree ({exc})")
            return {"skipped": str(exc), "baseline_rev": rev}
        try:
            for entry in engine["matrix"]:
                config = _bench_config(
                    entry["width"],
                    entry["routing"],
                    entry["injection_rate"],
                    quick,
                )
                try:
                    child = _time_in_tree(tree, config, reps)
                except (
                    subprocess.SubprocessError,
                    OSError,
                    ValueError,
                ) as exc:
                    print(f"  skipped: baseline run failed ({exc})")
                    return {"skipped": str(exc), "baseline_rev": rev}
                speedup = entry["skip_cycles_per_sec"] / child["cps"]
                matches = (
                    child["cycles_run"] == entry["cycles_run"]
                    and child["accepted_flits"] == entry["accepted_flits"]
                )
                entries.append(
                    {
                        "width": entry["width"],
                        "routing": entry["routing"],
                        "injection_rate": entry["injection_rate"],
                        "baseline_cycles_per_sec": round(child["cps"], 1),
                        "skip_cycles_per_sec": entry["skip_cycles_per_sec"],
                        "speedup_vs_baseline": round(speedup, 3),
                        "results_match_baseline": matches,
                    }
                )
                print(
                    f"  {entry['width']}x{entry['width']} "
                    f"{entry['routing']:10s} "
                    f"rate={entry['injection_rate']:<7} "
                    f"baseline={child['cps']:8.0f} c/s  "
                    f"skip={entry['skip_cycles_per_sec']:8.0f} c/s  "
                    f"{speedup:.2f}x"
                )
        finally:
            subprocess.run(
                ["git", "worktree", "remove", "--force", str(tree)],
                capture_output=True,
                cwd=repo,
                timeout=120,
            )

    def geomean(values):
        return math.exp(sum(math.log(v) for v in values) / len(values))

    speedups = [e["speedup_vs_baseline"] for e in entries]
    return {
        "baseline_rev": rev,
        "matrix": entries,
        "summary": {
            "geomean_speedup": round(geomean(speedups), 3),
            "max_speedup": round(max(speedups), 3),
        },
    }


def bench_cache(quick: bool) -> dict:
    """Cold-populate a fresh cache, then prove a warm re-run is free."""
    from repro.harness.cache import ResultCache

    rates = QUICK_CACHE_RATES if quick else CACHE_RATES
    config = _bench_config(8, "footprint", 0.05, quick)
    tasks = [SimTask(config, rate=rate) for rate in rates]

    with tempfile.TemporaryDirectory(prefix="bench-cache-") as tmp:
        cold_cache = ResultCache(tmp)
        t0 = time.perf_counter()
        cold = run_tasks(tasks, jobs=1, cache=cold_cache)
        cold_seconds = time.perf_counter() - t0

        warm_cache = ResultCache(tmp)
        t0 = time.perf_counter()
        warm = run_tasks(tasks, jobs=1, cache=warm_cache)
        warm_seconds = time.perf_counter() - t0

    if warm_cache.misses != 0 or warm_cache.hits != len(tasks):
        raise AssertionError(
            f"warm cache pass simulated: {warm_cache.misses} misses, "
            f"{warm_cache.hits} hits for {len(tasks)} tasks"
        )
    cold_points = [
        point_from_result(r, rate) for r, rate in zip(cold, rates)
    ]
    warm_points = [
        point_from_result(r, rate) for r, rate in zip(warm, rates)
    ]
    if cold_points != warm_points:
        raise AssertionError("cached results diverge from fresh results")

    speedup = cold_seconds / warm_seconds
    print(
        f"  {len(tasks)} tasks: cold={cold_seconds:.2f}s  "
        f"warm={warm_seconds:.3f}s  {speedup:.0f}x  "
        f"warm_simulations=0  identical=True"
    )
    return {
        "tasks": len(tasks),
        "rates": list(rates),
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(speedup, 3),
        "warm_hits": warm_cache.hits,
        "warm_misses": warm_cache.misses,
        "warm_simulations": 0,
        "results_identical": True,
    }


def bench_parallel(quick: bool, jobs: int | str | None) -> dict:
    rates = QUICK_PARALLEL_RATES if quick else PARALLEL_RATES
    config = _bench_config(8, "footprint", 0.05, quick)
    tasks = [SimTask(config, rate=rate) for rate in rates]
    workers = resolve_jobs(jobs if jobs is not None else "auto")

    t0 = time.perf_counter()
    serial = run_tasks(tasks, jobs=1)
    serial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = run_tasks(tasks, jobs=workers)
    parallel_seconds = time.perf_counter() - t0

    serial_points = [
        point_from_result(r, rate) for r, rate in zip(serial, rates)
    ]
    pooled_points = [
        point_from_result(r, rate) for r, rate in zip(pooled, rates)
    ]
    identical = serial_points == pooled_points
    if not identical:
        raise AssertionError("parallel sweep diverged from serial sweep")

    # With one resolved worker run_tasks stays in-process, so force the
    # pool once to prove results survive the process boundary unchanged.
    forced = run_tasks(tasks, jobs=max(2, workers))
    forced_points = [
        point_from_result(r, rate) for r, rate in zip(forced, rates)
    ]
    if forced_points != serial_points:
        raise AssertionError("process-pool sweep diverged from serial sweep")

    speedup = serial_seconds / parallel_seconds
    cpus = os.cpu_count() or 1
    multi_cpu = cpus >= 2 and workers >= 2
    print(
        f"  {len(tasks)} tasks: serial={serial_seconds:.2f}s  "
        f"jobs={workers}: {parallel_seconds:.2f}s  "
        f"{speedup:.2f}x  identical={identical}  pool-identical=True"
    )
    if multi_cpu:
        if speedup <= 1.0:
            raise AssertionError(
                f"pooled sweep slower than serial on a {cpus}-CPU host: "
                f"{speedup:.2f}x (batched submission should beat serial "
                f"whenever real parallelism exists)"
            )
        assertion = "passed"
    else:
        assertion = f"skipped (single-CPU host or jobs={workers})"
        print(f"  speedup>1 assertion {assertion}")
    return {
        "tasks": len(tasks),
        "rates": list(rates),
        "jobs": workers,
        "cpu_count": cpus,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(speedup, 3),
        "speedup_assertion": assertion,
        "results_identical": identical,
        "pool_results_identical": True,
    }


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _resolve_rev(repo: Path, rev: str) -> str | None:
    """Resolve ``rev`` to a commit sha, or ``None`` when git cannot.

    The overhead gates record the resolved sha (not the symbolic name)
    so a stored payload pins exactly which tree it was measured
    against even after the branch moves.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--verify", f"{rev}^{{commit}}"],
            capture_output=True,
            text=True,
            cwd=repo,
            check=True,
            timeout=30,
        )
    except (subprocess.SubprocessError, OSError):
        return None
    return proc.stdout.strip() or None


def bench_telemetry(
    quick: bool,
    reps: int,
    no_baseline: bool,
    baseline_rev: str = OVERHEAD_BASELINE_REV,
) -> dict:
    """Time telemetry off / sampling / tracing; bound the disabled cost.

    The off/on comparison runs in-tree and asserts bit-identical
    simulated results.  The disabled-probe overhead is then measured
    against ``baseline_rev`` (default :data:`OVERHEAD_BASELINE_REV` =
    ``HEAD``, the tree this change grew from) in a git worktree — the
    same machinery as :func:`bench_baseline` — and the **per-PR delta**
    must stay under :data:`TELEMETRY_OVERHEAD_BUDGET` geomean.  Both
    sides of that ratio are timed back-to-back in fresh child
    processes — reusing the in-process ``off`` timing taken minutes
    earlier conflates host drift (and the bench process's accumulated
    heap) with probe cost.
    """
    matrix = QUICK_TELEMETRY_MATRIX if quick else TELEMETRY_MATRIX
    sampling = TelemetryConfig(sample_every=100)
    tracing = TelemetryConfig(sample_every=100, trace_flits=True)
    entries = []
    for width, routing, rate in matrix:
        config = _bench_config(width, routing, rate, quick)
        off_cps, off_sig = _time_mode(config, "skip", reps)
        on_cps, on_sig = _time_mode(
            config.with_(telemetry=sampling), "skip", reps
        )
        trace_cps, trace_sig = _time_mode(
            config.with_(telemetry=tracing), "skip", reps
        )
        if not (off_sig == on_sig == trace_sig):
            raise AssertionError(
                f"telemetry changed simulated results for {width}x{width} "
                f"{routing} @ {rate}"
            )
        entries.append(
            {
                "width": width,
                "routing": routing,
                "injection_rate": rate,
                "off_cycles_per_sec": round(off_cps, 1),
                "sampling_cycles_per_sec": round(on_cps, 1),
                "tracing_cycles_per_sec": round(trace_cps, 1),
                "sampling_cost": round(off_cps / on_cps - 1, 4),
                "tracing_cost": round(off_cps / trace_cps - 1, 4),
                "results_identical": True,
            }
        )
        print(
            f"  {width}x{width} {routing:10s} rate={rate:<7} "
            f"off={off_cps:8.0f} sampling={on_cps:8.0f} "
            f"tracing={trace_cps:8.0f} c/s"
        )

    out = {
        "reps": reps,
        "overhead_budget": TELEMETRY_OVERHEAD_BUDGET,
        "matrix": entries,
        "summary": {
            "geomean_sampling_cost": round(
                _geomean([1 + e["sampling_cost"] for e in entries]) - 1, 4
            ),
            "geomean_tracing_cost": round(
                _geomean([1 + e["tracing_cost"] for e in entries]) - 1, 4
            ),
        },
    }

    if no_baseline:
        print("  disabled-probe baseline skipped: --no-baseline")
        out["baseline"] = {"skipped": "--no-baseline"}
        return out
    repo = Path(__file__).resolve().parent.parent
    resolved = _resolve_rev(repo, baseline_rev)
    if resolved is None:
        print(
            f"  disabled-probe baseline skipped: "
            f"cannot resolve {baseline_rev!r}"
        )
        out["baseline"] = {"skipped": f"cannot resolve {baseline_rev!r}"}
        return out
    with tempfile.TemporaryDirectory(prefix="bench-telemetry-") as tmp:
        tree = Path(tmp) / "tree"
        try:
            subprocess.run(
                ["git", "worktree", "add", "--detach", str(tree),
                 resolved],
                capture_output=True,
                text=True,
                cwd=repo,
                check=True,
                timeout=120,
            )
        except (subprocess.SubprocessError, OSError) as exc:
            print(f"  disabled-probe baseline skipped: no worktree ({exc})")
            out["baseline"] = {"skipped": str(exc)}
            return out
        try:
            overheads = []
            for entry in entries:
                config = _bench_config(
                    entry["width"],
                    entry["routing"],
                    entry["injection_rate"],
                    quick,
                )
                try:
                    current = _time_in_tree(repo, config, reps)
                    child = _time_in_tree(tree, config, reps)
                except (
                    subprocess.SubprocessError,
                    OSError,
                    ValueError,
                ) as exc:
                    print(f"  disabled-probe baseline skipped: ({exc})")
                    out["baseline"] = {"skipped": str(exc)}
                    return out
                overhead = child["cps"] / current["cps"] - 1
                entry["off_cycles_per_sec_interleaved"] = round(
                    current["cps"], 1
                )
                entry["baseline_cycles_per_sec"] = round(child["cps"], 1)
                entry["disabled_probe_overhead"] = round(overhead, 4)
                overheads.append(overhead)
                print(
                    f"  {entry['width']}x{entry['width']} "
                    f"{entry['routing']:10s} "
                    f"rate={entry['injection_rate']:<7} "
                    f"baseline={child['cps']:8.0f} c/s  "
                    f"overhead={overhead:+.1%}"
                )
        finally:
            subprocess.run(
                ["git", "worktree", "remove", "--force", str(tree)],
                capture_output=True,
                cwd=repo,
                timeout=120,
            )
    geomean_overhead = _geomean([1 + o for o in overheads]) - 1
    out["baseline"] = {
        "rev": resolved,
        "reference": baseline_rev,
        "geomean_disabled_probe_overhead": round(geomean_overhead, 4),
    }
    print(
        f"  disabled-probe overhead geomean {geomean_overhead:+.1%} "
        f"vs {baseline_rev} (budget {TELEMETRY_OVERHEAD_BUDGET:.0%})"
    )
    if geomean_overhead >= TELEMETRY_OVERHEAD_BUDGET:
        raise AssertionError(
            f"disabled-probe overhead {geomean_overhead:.1%} exceeds the "
            f"{TELEMETRY_OVERHEAD_BUDGET:.0%} per-PR budget vs "
            f"{baseline_rev} ({resolved})"
        )
    return out


def bench_validate(
    quick: bool,
    reps: int,
    no_baseline: bool,
    baseline_rev: str = OVERHEAD_BASELINE_REV,
) -> dict:
    """Time invariant validation off vs all checkers on; bound the
    disabled cost.

    The off/on comparison runs in-tree and asserts bit-identical
    simulated results (the checkers observe, never steer).  The disabled
    hook overhead — the ``val is None`` attribute checks left in the hot
    path — is then measured against ``baseline_rev`` (default ``HEAD``)
    in a git worktree and the per-PR delta must stay under
    :data:`VALIDATE_OVERHEAD_BUDGET` geomean, with both sides timed
    back-to-back in fresh child processes (see :func:`bench_telemetry`).
    """
    from repro.validate import ValidationConfig
    from repro.validate.differential import result_signature

    def time_validated(config, validation):
        best = 0.0
        signature = None
        checks = 0
        for _ in range(reps):
            sim = Simulator(config, validation=validation)
            t0 = time.perf_counter()
            result = sim.run()
            elapsed = time.perf_counter() - t0
            best = max(best, result.cycles_run / elapsed)
            signature = result_signature(result)
            checks = sim.validator.checks_run if sim.validator else 0
        return best, signature, checks

    matrix = QUICK_VALIDATE_MATRIX if quick else VALIDATE_MATRIX
    entries = []
    for width, routing, rate in matrix:
        config = _bench_config(width, routing, rate, quick)
        off_cps, off_sig, _ = time_validated(config, None)
        on_cps, on_sig, checks = time_validated(config, ValidationConfig())
        if off_sig != on_sig:
            raise AssertionError(
                f"validation changed simulated results for {width}x{width} "
                f"{routing} @ {rate}"
            )
        entries.append(
            {
                "width": width,
                "routing": routing,
                "injection_rate": rate,
                "off_cycles_per_sec": round(off_cps, 1),
                "checked_cycles_per_sec": round(on_cps, 1),
                "checker_cost": round(off_cps / on_cps - 1, 4),
                "checks_run": checks,
                "results_identical": True,
            }
        )
        print(
            f"  {width}x{width} {routing:10s} rate={rate:<7} "
            f"off={off_cps:8.0f} checked={on_cps:8.0f} c/s "
            f"({checks} checks)"
        )

    out = {
        "reps": reps,
        "overhead_budget": VALIDATE_OVERHEAD_BUDGET,
        "matrix": entries,
        "summary": {
            "geomean_checker_cost": round(
                _geomean([1 + e["checker_cost"] for e in entries]) - 1, 4
            ),
        },
    }

    if no_baseline:
        print("  disabled-hook baseline skipped: --no-baseline")
        out["baseline"] = {"skipped": "--no-baseline"}
        return out
    repo = Path(__file__).resolve().parent.parent
    resolved = _resolve_rev(repo, baseline_rev)
    if resolved is None:
        print(
            f"  disabled-hook baseline skipped: "
            f"cannot resolve {baseline_rev!r}"
        )
        out["baseline"] = {"skipped": f"cannot resolve {baseline_rev!r}"}
        return out
    with tempfile.TemporaryDirectory(prefix="bench-validate-") as tmp:
        tree = Path(tmp) / "tree"
        try:
            subprocess.run(
                ["git", "worktree", "add", "--detach", str(tree),
                 resolved],
                capture_output=True,
                text=True,
                cwd=repo,
                check=True,
                timeout=120,
            )
        except (subprocess.SubprocessError, OSError) as exc:
            print(f"  disabled-hook baseline skipped: no worktree ({exc})")
            out["baseline"] = {"skipped": str(exc)}
            return out
        try:
            overheads = []
            for entry in entries:
                config = _bench_config(
                    entry["width"],
                    entry["routing"],
                    entry["injection_rate"],
                    quick,
                )
                try:
                    current = _time_in_tree(repo, config, reps)
                    child = _time_in_tree(tree, config, reps)
                except (
                    subprocess.SubprocessError,
                    OSError,
                    ValueError,
                ) as exc:
                    print(f"  disabled-hook baseline skipped: ({exc})")
                    out["baseline"] = {"skipped": str(exc)}
                    return out
                overhead = child["cps"] / current["cps"] - 1
                entry["off_cycles_per_sec_interleaved"] = round(
                    current["cps"], 1
                )
                entry["baseline_cycles_per_sec"] = round(child["cps"], 1)
                entry["disabled_hook_overhead"] = round(overhead, 4)
                overheads.append(overhead)
                print(
                    f"  {entry['width']}x{entry['width']} "
                    f"{entry['routing']:10s} "
                    f"rate={entry['injection_rate']:<7} "
                    f"baseline={child['cps']:8.0f} c/s  "
                    f"overhead={overhead:+.1%}"
                )
        finally:
            subprocess.run(
                ["git", "worktree", "remove", "--force", str(tree)],
                capture_output=True,
                cwd=repo,
                timeout=120,
            )
    geomean_overhead = _geomean([1 + o for o in overheads]) - 1
    out["baseline"] = {
        "rev": resolved,
        "reference": baseline_rev,
        "geomean_disabled_hook_overhead": round(geomean_overhead, 4),
    }
    print(
        f"  disabled-hook overhead geomean {geomean_overhead:+.1%} "
        f"vs {baseline_rev} (budget {VALIDATE_OVERHEAD_BUDGET:.0%})"
    )
    if geomean_overhead >= VALIDATE_OVERHEAD_BUDGET:
        raise AssertionError(
            f"disabled-hook overhead {geomean_overhead:.1%} exceeds the "
            f"{VALIDATE_OVERHEAD_BUDGET:.0%} per-PR budget vs "
            f"{baseline_rev} ({resolved})"
        )
    return out


def bench_tuner(quick: bool) -> dict:
    """Run a tiny budgeted tune cold, then prove the warm replay is free.

    The warm re-run must make the *same decisions* (identical frontier,
    identical per-round survivors) while simulating nothing — budget
    accounting charges estimated cycle-nodes, never actual simulations,
    so a fully warm cache replays the search byte-identically.
    """
    from repro.harness.cache import ResultCache
    from repro.tuner.objectives import make_scenario
    from repro.tuner.runner import run_tune

    width = 4 if quick else 8
    scenario = make_scenario(
        "uniform",
        width=width,
        warmup=40 if quick else 100,
        measure=80 if quick else 200,
        drain=200 if quick else 450,
        rates=(0.02, 0.08, 0.15),
    )
    kwargs = dict(
        strategy="refine",
        budget_cycles=5_000_000,
        seed=1,
        jobs=1,
        n0=4 if quick else 8,
        eta=2,
        refine_rounds=1,
        beam=2,
    )
    with tempfile.TemporaryDirectory(prefix="bench-tuner-") as tmp:
        t0 = time.perf_counter()
        cold = run_tune(scenario, cache=ResultCache(tmp), **kwargs)
        cold_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = run_tune(scenario, cache=ResultCache(tmp), **kwargs)
        warm_seconds = time.perf_counter() - t0

    if warm.total_fresh_simulations != 0:
        raise AssertionError(
            f"warm tune replay simulated "
            f"{warm.total_fresh_simulations} tasks (expected 0)"
        )
    cold_frontier = sorted(e.candidate.key() for e in cold.frontier)
    warm_frontier = sorted(e.candidate.key() for e in warm.frontier)
    if cold_frontier != warm_frontier:
        raise AssertionError("warm tune frontier diverges from cold")
    cold_rounds = [(r.label, r.survivors) for r in cold.rounds]
    warm_rounds = [(r.label, r.survivors) for r in warm.rounds]
    if cold_rounds != warm_rounds:
        raise AssertionError("warm tune promotions diverge from cold")

    speedup = cold_seconds / warm_seconds
    print(
        f"  {cold.total_tasks} tasks, {len(cold.evals)} full-fidelity "
        f"configs: cold={cold_seconds:.2f}s warm={warm_seconds:.3f}s "
        f"{speedup:.0f}x  warm_fresh=0  frontier={len(cold.frontier)}  "
        f"dominators={len(cold.dominators)}"
    )
    return {
        "scenario": scenario.name,
        "strategy": cold.strategy,
        "tasks": cold.total_tasks,
        "full_fidelity_configs": len(cold.evals),
        "frontier_size": len(cold.frontier),
        "dominators": len(cold.dominators),
        "spent_cycles": cold.spent_cycles,
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(speedup, 3),
        "cold_fresh_simulations": cold.total_fresh_simulations,
        "warm_fresh_simulations": warm.total_fresh_simulations,
        "warm_cache_hits": warm.total_cache_hits,
        "warm_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small matrix and short runs (CI smoke; ~10s)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        help="timing repetitions per config (default: 3, or 1 with --quick)",
    )
    parser.add_argument(
        "--jobs",
        default=None,
        metavar="N|auto",
        help="worker count for the parallel section (default: auto)",
    )
    parser.add_argument(
        "--output-dir",
        default=str(Path(__file__).resolve().parent),
        help="where to write BENCH_<timestamp>.json",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip timing the repo's root commit in a git worktree",
    )
    parser.add_argument(
        "--overhead-baseline-rev",
        default=OVERHEAD_BASELINE_REV,
        metavar="REV",
        help=(
            "git revision the telemetry/validate overhead gates compare "
            "against (default: HEAD, i.e. a per-PR delta gate; aim at a "
            "merge base to measure a whole branch)"
        ),
    )
    parser.add_argument(
        "--stage-times",
        action="store_true",
        help=(
            "record per-stage wall time of one instrumented vector run "
            "per engine-matrix entry (separate diagnostic run; off by "
            "default because the timing wrappers add overhead)"
        ),
    )
    args = parser.parse_args(argv)
    if args.reps is not None and args.reps < 1:
        parser.error(f"--reps must be >= 1, got {args.reps}")
    reps = args.reps if args.reps is not None else (1 if args.quick else 3)

    print(f"engine: vector vs skip vs fast vs legacy "
          f"({'quick' if args.quick else 'full'} matrix, best of {reps})")
    engine = bench_engine(args.quick, reps, stage_times=args.stage_times)
    print("auto: per-config engine arbitration at the two anchors")
    auto = bench_auto(args.quick, reps)
    print("torus: cross-engine identity + drain on wrap links")
    torus = bench_torus(args.quick, reps)
    if args.no_baseline:
        baseline = {"skipped": "--no-baseline"}
    else:
        print("baseline: skip vs seed tree (root commit, subprocess)")
        baseline = bench_baseline(args.quick, reps, engine)
    print("cache: cold populate vs warm re-run")
    cache = bench_cache(args.quick)
    print("parallel: serial vs process pool")
    parallel = bench_parallel(args.quick, args.jobs)
    print("telemetry: off vs sampling vs tracing, disabled-probe overhead")
    telemetry = bench_telemetry(
        args.quick, reps, args.no_baseline, args.overhead_baseline_rev
    )
    print("validate: off vs all checkers on, disabled-hook overhead")
    validate = bench_validate(
        args.quick, reps, args.no_baseline, args.overhead_baseline_rev
    )
    print("tuner: budgeted tune cold vs warm-cache replay")
    tuner = bench_tuner(args.quick)

    payload = {
        "schema": "footprint-noc-bench/9",
        "timestamp": time.strftime("%Y%m%dT%H%M%S"),
        "quick": args.quick,
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "engine": engine,
        "auto": auto,
        "torus": torus,
        "baseline": baseline,
        "cache": cache,
        "parallel": parallel,
        "telemetry": telemetry,
        "validate": validate,
        "tuner": tuner,
    }
    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / f"BENCH_{payload['timestamp']}.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    summary = engine["summary"]
    print(
        f"engine speedup vs legacy loop: geomean "
        f"{summary['geomean_speedup']}x, zero-load geomean "
        f"{summary['zero_load_geomean_speedup']}x, "
        f"max {summary['max_speedup']}x"
    )
    print(
        f"vector speedup vs skip: geomean "
        f"{summary['geomean_vector_speedup']}x, loaded geomean "
        f"{summary['loaded_geomean_vector_speedup']}x, "
        f"max {summary['max_vector_speedup']}x"
    )
    asum = auto["summary"]
    print(
        f"auto vs skip: zero-load "
        f"{asum['zero_load_auto_speedup']}x, saturation "
        f"{asum['saturation_auto_speedup']}x"
    )
    print(
        f"torus skip vs legacy: geomean "
        f"{torus['summary']['geomean_speedup']}x, all drained, "
        f"engines identical"
    )
    if "summary" in baseline:
        bsum = baseline["summary"]
        print(
            f"engine speedup vs seed tree: geomean "
            f"{bsum['geomean_speedup']}x, max {bsum['max_speedup']}x"
        )
    tsum = telemetry["summary"]
    line = (
        f"telemetry cost: sampling {tsum['geomean_sampling_cost']:+.1%}, "
        f"tracing {tsum['geomean_tracing_cost']:+.1%} geomean"
    )
    overhead = telemetry["baseline"].get("geomean_disabled_probe_overhead")
    if overhead is not None:
        line += (
            f"; disabled probes {overhead:+.1%} vs "
            f"{args.overhead_baseline_rev}"
        )
    print(line)
    vsum = validate["summary"]
    line = f"validation cost: {vsum['geomean_checker_cost']:+.1%} geomean"
    overhead = validate["baseline"].get("geomean_disabled_hook_overhead")
    if overhead is not None:
        line += (
            f"; disabled hooks {overhead:+.1%} vs "
            f"{args.overhead_baseline_rev}"
        )
    print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
