"""Fig. 10 — PARSEC-like traces: latency, blocking purity, HoL degree.

Runs pairs of synthetic PARSEC-like workloads (the Netrace stand-in
documented in DESIGN.md) simultaneously and compares DBAR and Footprint
on the paper's three measurements: (a) average latency difference, (b)
purity of blocking, (c) HoL-blocking degree (impurity x blocking count).
Expected shape: Footprint wins or ties latency per pair; Footprint's
purity is higher than DBAR's (it concentrates blocking onto footprint
VCs); the heavy, skewed fluidanimate pairs show the larger gains.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import fig10_parsec
from repro.harness.reporting import report_fig10

PAIRS = (
    ("x264", "canneal"),
    ("fluidanimate", "bodytrack"),
    ("fluidanimate", "x264"),
    ("bodytrack", "canneal"),
)


def test_fig10_parsec(benchmark, report, scale):
    entries = run_once(benchmark, fig10_parsec, scale, pairs=PAIRS, seed=1)
    report(report_fig10(entries))

    # Footprint raises the purity of blocking on average (Fig. 10b).
    mean_dbar_purity = sum(e.dbar_purity for e in entries) / len(entries)
    mean_fp_purity = sum(e.footprint_purity for e in entries) / len(entries)
    assert mean_fp_purity >= mean_dbar_purity

    # Footprint wins or roughly ties latency on average (Fig. 10a: up to
    # 31% better, one pair 0.3% worse).
    mean_gain = sum(e.latency_improvement for e in entries) / len(entries)
    assert mean_gain > -0.05
