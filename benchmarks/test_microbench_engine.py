"""Microbenchmark — raw simulation-engine cycle rate.

Not a paper figure: tracks the simulator's own performance (router-cycles
per second) so regressions in the hot path are visible in benchmark
history.  Uses pytest-benchmark's statistical timing (several rounds)
since a single run is fast.
"""

from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator


def test_engine_cycle_rate(benchmark):
    config = SimulationConfig(
        width=8,
        num_vcs=10,
        routing="footprint",
        traffic="uniform",
        injection_rate=0.3,
        warmup_cycles=0,
        measure_cycles=100,
        drain_cycles=0,
        seed=1,
    )

    def run_100_cycles():
        sim = Simulator(config)
        for _ in range(100):
            sim.step()
        return sim

    sim = benchmark(run_100_cycles)
    assert sum(s.ejected_flits for s in sim.sinks) > 0


def test_router_allocation_rate(benchmark):
    """VC allocation micro-benchmark: one saturated router, one VA round."""
    import random

    from repro.router.allocator import allocate_vcs
    from repro.router.flit import Packet
    from repro.router.output import OutputPort
    from repro.router.vcstate import InputVc
    from repro.routing.requests import Priority, VcRequest
    from repro.topology.ports import Direction

    outputs = {
        Direction.EAST: OutputPort(
            Direction.EAST, 10, 4, 8, 2, escape_vc=0, atomic_realloc=True
        )
    }
    inputs = []
    for i in range(10):
        ivc = InputVc(Direction.WEST, i, 4)
        ivc.push(Packet(src=0, dst=9, size=1, creation_time=0).flits()[0])
        ivc.refresh_state()
        reqs = [
            VcRequest(Direction.EAST, v, Priority.LOW) for v in range(1, 10)
        ]
        inputs.append((ivc, reqs))
    rng = random.Random(1)

    def allocate():
        grants = allocate_vcs(inputs, outputs, rng)
        # Roll back so every round allocates from the same state.
        for g in grants:
            outputs[Direction.EAST]._release(g.out_vc)
            outputs[Direction.EAST].clear_fresh()
            g.input_vc.state = type(g.input_vc.state).ROUTING
            g.input_vc.out_direction = None
            g.input_vc.out_vc = None
        return grants

    grants = benchmark(allocate)
    assert grants
