"""Ablation — Footprint's VC-request prioritization and port selection.

Dissects the two mechanisms of Algorithm 1 against the DBAR baselines:

* ``dbar``       — coarse threshold port selection, oblivious VCs
                   (the paper's baseline);
* ``dbar-fine``  — exact-credit port selection, oblivious VCs (an upper
                   bound on footprint-free local greedy routing);
* ``footprint``  — footprint port tie-break + prioritized VC regimes.

Expected shape on the hotspot workload: footprint protects background
latency best; dbar-fine improves on dbar but cannot contain HoL blocking.
"""

from benchmarks.conftest import run_once
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator

ALGOS = ("dbar", "dbar-fine", "footprint")


def run_algo(scale, routing):
    config = SimulationConfig(
        width=scale.width,
        num_vcs=scale.num_vcs,
        routing=routing,
        traffic="hotspot",
        hotspot_rate=0.55,
        background_rate=0.3,
        warmup_cycles=scale.warmup,
        measure_cycles=scale.measure,
        drain_cycles=scale.drain,
        seed=1,
    )
    return Simulator(config).run()


def test_ablation_priorities(benchmark, report, scale):
    results = run_once(
        benchmark, lambda: {a: run_algo(scale, a) for a in ALGOS}
    )
    lines = ["Ablation — prioritization (hotspot 0.55, background 0.3)"]
    for algo, result in results.items():
        lines.append(
            f"  {algo:10s}  background latency = "
            f"{result.flow_latency('background'):8.2f}  "
            f"purity = {result.blocking.purity:.3f}"
        )
    report("\n".join(lines))

    fp = results["footprint"].flow_latency("background")
    dbar = results["dbar"].flow_latency("background")
    assert fp < dbar * 1.1  # footprint at least matches dbar
    # Footprint's blocking is purer: busy VCs share the blocked packet's
    # destination more often.
    assert (
        results["footprint"].blocking.purity
        >= results["dbar"].blocking.purity
    )
