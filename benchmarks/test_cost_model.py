"""§4.4 — implementation-cost table.

Regenerates the paper's storage-cost argument: Footprint needs only a
per-VC owner register, per-VC state bits, and an idle-VC counter per
port.  Expected numbers: 132 bits/port for the 8x8 mesh with 16 VCs —
roughly one extra 128-bit flit-buffer entry, as the paper argues.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import cost_table
from repro.harness.reporting import report_cost


def test_cost_model(benchmark, report):
    models = run_once(benchmark, cost_table)
    report(report_cost(models))

    headline = next(
        m for m in models if m.num_nodes == 64 and m.num_vcs == 16
    )
    assert headline.total_bits_per_port == 132
    assert 0.9 <= headline.overhead_vs_flit_buffer(128) <= 1.1

    # Cost grows gently: O(V log N) per port.
    big = next(m for m in models if m.num_nodes == 256)
    assert big.total_bits_per_port < 2 * headline.total_bits_per_port
