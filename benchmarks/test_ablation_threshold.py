"""Ablation — Footprint's congestion threshold (Algorithm 1 Step 3).

The paper uses half the VCs per channel as the threshold separating the
uncongested regime (flat requests over all adaptive VCs) from the
prioritized regimes.  This ablation sweeps the threshold fraction to show
the chosen value is a reasonable operating point: a threshold of ~0.5
should match or beat the extremes (0 = regulation almost never engages;
1 = the algorithm prioritizes even at zero load).
"""

from benchmarks.conftest import run_once
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator

FRACTIONS = (0.1, 0.5, 0.9)


def run_threshold(scale, fraction):
    config = SimulationConfig(
        width=scale.width,
        num_vcs=scale.num_vcs,
        routing="footprint",
        traffic="hotspot",
        hotspot_rate=0.5,
        background_rate=0.3,
        congestion_threshold=fraction,
        warmup_cycles=scale.warmup,
        measure_cycles=scale.measure,
        drain_cycles=scale.drain,
        seed=1,
    )
    return Simulator(config).run()


def test_ablation_congestion_threshold(benchmark, report, scale):
    results = run_once(
        benchmark,
        lambda: {f: run_threshold(scale, f) for f in FRACTIONS},
    )
    lines = ["Ablation — congestion threshold (hotspot 0.5, background 0.3)"]
    for fraction, result in results.items():
        lines.append(
            f"  threshold={fraction:.1f}  background latency = "
            f"{result.flow_latency('background'):8.2f}  "
            f"purity = {result.blocking.purity:.3f}"
        )
    report("\n".join(lines))

    latency = {
        f: r.flow_latency("background") for f, r in results.items()
    }
    # The paper's V/2 choice is within 35% of the best sampled setting.
    best = min(latency.values())
    assert latency[0.5] <= best * 1.35
