#!/usr/bin/env python
"""CI guard: the vector/skip ratio at saturation must not collapse.

Compares a freshly produced ``BENCH_*.json`` against the latest one
committed to the repository and fails (exit 1) when the saturation
entry's ``vector_speedup`` drops below ``FLOOR_FRACTION`` of the
committed value.  The saturation point — 8x8 footprint at rate 0.3 —
is where the vector core earns its keep, so a regression there is the
one that matters; absolute cycles/sec are host-dependent and noisy,
but the within-run vector/skip *ratio* is comparable across hosts
(both engines time the identical workload in the same process).

The floor is deliberately loose (0.8x): CI runners are shared and the
quick matrix is short, so ratio jitter of +-10% is normal.  A genuine
regression — an accidentally de-vectorized stage, a new per-cycle
python loop — shows up as a 2x-3x ratio collapse and clears the floor
with room to spare.

Usage::

    python benchmarks/check_perf_regression.py FRESH [--reference DIR]

``FRESH`` is a BENCH json file or a directory (newest file wins);
``--reference`` defaults to this script's directory (the committed
benchmarks).  Exit 0 on pass, 1 on regression, 2 on missing data.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: The engine-matrix entry the guard keys on (width, routing, rate).
SATURATION_POINT = (8, "footprint", 0.3)

#: Minimum acceptable fresh/committed ratio of ``vector_speedup``.
FLOOR_FRACTION = 0.8


def _newest_bench(path: Path) -> Path | None:
    if path.is_file():
        return path
    if path.is_dir():
        candidates = sorted(path.glob("BENCH_*.json"))
        if candidates:
            # Timestamps sort lexicographically.
            return candidates[-1]
    return None


def _saturation_speedup(bench_path: Path) -> float | None:
    payload = json.loads(bench_path.read_text())
    width, routing, rate = SATURATION_POINT
    for entry in payload.get("engine", {}).get("matrix", ()):
        if (
            entry.get("width") == width
            and entry.get("routing") == routing
            and abs(entry.get("injection_rate", -1) - rate) < 1e-12
        ):
            return entry["vector_speedup"]
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "fresh",
        help="freshly produced BENCH_*.json (file, or directory: newest)",
    )
    parser.add_argument(
        "--reference",
        default=str(Path(__file__).resolve().parent),
        help=(
            "committed BENCH_*.json to compare against (file, or "
            "directory: newest; default: the benchmarks directory)"
        ),
    )
    args = parser.parse_args(argv)

    fresh_path = _newest_bench(Path(args.fresh))
    ref_path = _newest_bench(Path(args.reference))
    if fresh_path is None or ref_path is None:
        missing = args.fresh if fresh_path is None else args.reference
        print(f"error: no BENCH_*.json found at {missing}", file=sys.stderr)
        return 2
    fresh = _saturation_speedup(fresh_path)
    ref = _saturation_speedup(ref_path)
    if fresh is None or ref is None:
        where = fresh_path if fresh is None else ref_path
        print(
            f"error: {where} has no engine entry for "
            f"{SATURATION_POINT} (pre-/6 schema without the quick-matrix "
            f"saturation anchor?)",
            file=sys.stderr,
        )
        return 2

    floor = FLOOR_FRACTION * ref
    verdict = "ok" if fresh >= floor else "REGRESSION"
    print(
        f"saturation vector/skip: fresh {fresh:.3f}x ({fresh_path.name})  "
        f"committed {ref:.3f}x ({ref_path.name})  floor "
        f"{floor:.3f}x  {verdict}"
    )
    if fresh < floor:
        print(
            f"error: vector/skip ratio at saturation fell below "
            f"{FLOOR_FRACTION:.0%} of the committed benchmark — a "
            f"vectorized stage has likely regressed to a per-cycle "
            f"python path",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
