#!/usr/bin/env python
"""CI guard: the config auto-tuner beats the paper default and replays free.

Runs a small budgeted successive-halving + refinement tune on the 8x8
hotspot scenario (short smoke-scale cycle counts) against a fresh
cache, then re-runs it warm, and asserts the tuner's core contract:

1. the Pareto frontier over (avg latency, saturation throughput, cost
   bits) is non-empty and every entry is full-fidelity;
2. at least one frontier config **dominates** the paper's Table 2
   default — better on >= 1 objective, worse on none;
3. the warm re-run reports **zero fresh simulations in every round**
   while reproducing the identical frontier and identical per-round
   survivors (budgets are charged in estimated cycle-nodes, so cache
   temperature cannot steer the search);
4. the ``TUNE_*.json`` artifact round-trips through the report loader.

The artifact is written to ``--output-dir`` so CI can upload it.

Exit 0 on pass, 1 on a semantic failure, 2 on setup problems.

Usage::

    PYTHONPATH=src python benchmarks/check_tuner.py [--output-dir DIR]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.harness.cache import ResultCache  # noqa: E402
from repro.tuner.objectives import make_scenario  # noqa: E402
from repro.tuner.report import (  # noqa: E402
    load_tune,
    render_tune,
    write_tune_artifact,
)
from repro.tuner.runner import run_tune  # noqa: E402

#: Search shape: small enough for CI, big enough to reach the default's
#: neighborhood (the refinement stage always explores it).
TUNE_KWARGS = dict(
    strategy="refine",
    budget_cycles=2_500_000,
    seed=1,
    n0=6,
    eta=2,
    refine_rounds=1,
    beam=4,
)


def _fail(message: str, code: int = 1) -> int:
    print(f"check_tuner: FAIL - {message}")
    return code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output-dir",
        default=str(Path(__file__).resolve().parent),
        help="where the TUNE_*.json artifact lands",
    )
    parser.add_argument(
        "--jobs",
        default="auto",
        metavar="N|auto",
        help="worker processes (default: auto)",
    )
    args = parser.parse_args(argv)

    scenario = make_scenario(
        "hotspot",
        width=8,
        warmup=60,
        measure=120,
        drain=350,
        rates=(0.05, 0.15, 0.3, 0.45),
    )
    print(f"  scenario: {scenario.describe()}")

    with tempfile.TemporaryDirectory(prefix="check-tuner-") as tmp:
        t0 = time.perf_counter()
        cold = run_tune(
            scenario, jobs=args.jobs, cache=ResultCache(tmp), **TUNE_KWARGS
        )
        cold_seconds = time.perf_counter() - t0
        print(
            f"  cold: {cold_seconds:.1f}s, {cold.total_tasks} tasks "
            f"({cold.total_fresh_simulations} simulated), "
            f"{len(cold.evals)} full-fidelity configs, frontier "
            f"{len(cold.frontier)}, dominators {len(cold.dominators)}"
        )

        t0 = time.perf_counter()
        warm = run_tune(
            scenario, jobs=args.jobs, cache=ResultCache(tmp), **TUNE_KWARGS
        )
        warm_seconds = time.perf_counter() - t0
        print(
            f"  warm: {warm_seconds:.2f}s, "
            f"{warm.total_fresh_simulations} fresh simulations, "
            f"{warm.total_cache_hits} cache hits"
        )

    # 1. Non-empty, full-fidelity frontier.
    if not cold.frontier:
        return _fail("Pareto frontier is empty")
    off_rung = [e for e in cold.frontier if e.rung != "full"]
    if off_rung:
        return _fail(
            f"frontier contains non-full-fidelity evals: "
            f"{[e.rung for e in off_rung]}"
        )

    # 2. Some frontier config dominates the paper default.
    if not cold.dominators:
        default = cold.default_eval
        return _fail(
            f"no frontier config dominates the Table 2 default "
            f"(lat={default.avg_latency:.2f} "
            f"thr={default.saturation_throughput:.4f} "
            f"cost={default.cost_bits:.0f})"
        )
    best = cold.dominators[0]
    print(
        f"  dominator: {best.candidate.key()} "
        f"(lat {best.avg_latency:.2f} vs "
        f"{cold.default_eval.avg_latency:.2f}, thr "
        f"{best.saturation_throughput:.4f} vs "
        f"{cold.default_eval.saturation_throughput:.4f}, cost "
        f"{best.cost_bits:.0f} vs {cold.default_eval.cost_bits:.0f})"
    )

    # 3. Warm replay: zero fresh simulations in *every* round, and the
    #    same search trajectory.
    hot_rounds = [
        (r.label, r.fresh_simulations)
        for r in warm.rounds
        if r.fresh_simulations != 0
    ]
    if hot_rounds:
        return _fail(f"warm rounds simulated fresh work: {hot_rounds}")
    cold_frontier = sorted(e.candidate.key() for e in cold.frontier)
    warm_frontier = sorted(e.candidate.key() for e in warm.frontier)
    if cold_frontier != warm_frontier:
        return _fail(
            f"warm frontier diverges: {warm_frontier} != {cold_frontier}"
        )
    if [(r.label, r.survivors) for r in cold.rounds] != [
        (r.label, r.survivors) for r in warm.rounds
    ]:
        return _fail("warm per-round survivors diverge from cold")
    if cold.spent_cycles != warm.spent_cycles:
        return _fail(
            f"budget accounting diverges: cold spent "
            f"{cold.spent_cycles}, warm spent {warm.spent_cycles}"
        )

    # 4. Artifact round-trip.
    path = write_tune_artifact(cold, args.output_dir)
    loaded = load_tune(path)
    if sorted(e.candidate.key() for e in loaded.frontier) != cold_frontier:
        return _fail(f"artifact round-trip lost the frontier ({path})")
    render_tune(loaded)  # must not raise
    print(f"  artifact: {path}")

    print(
        "check_tuner: PASS - frontier dominates the default and the "
        "warm replay ran 0 fresh simulations"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
