#!/usr/bin/env python
"""CI guard: the experiment service dedupes and shuts down cleanly.

Boots ``repro serve`` as a real subprocess on an ephemeral port, then
drives it over the JSON-lines socket the way concurrent figure drivers
would:

1. submit a tiny grid on one stream and wait for it — every task must
   simulate once;
2. resubmit the identical grid on a *different* stream — it must dedupe
   to the same job with zero new simulations;
3. submit an overlapping grid — the shared task must be answered by the
   cache/in-flight table, never re-run;
4. ask for the leaderboard — the finished jobs must have been ingested;
5. send ``shutdown`` — the server process must exit 0 promptly.

Exit 0 on pass, 1 on a semantic failure, 2 when the server cannot be
started at all.

Usage::

    PYTHONPATH=src python benchmarks/check_service.py [--keep-state]
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.harness.parallel import SimTask  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.sim.config import SimulationConfig  # noqa: E402

#: How long to wait for the server to report its port / to exit.
STARTUP_TIMEOUT = 60.0
SHUTDOWN_TIMEOUT = 60.0

_LISTENING = re.compile(r"listening on ([\d.]+):(\d+)")


def _tiny_task(seed: int) -> SimTask:
    return SimTask(
        SimulationConfig(
            width=4,
            num_vcs=4,
            routing="footprint",
            injection_rate=0.05,
            warmup_cycles=10,
            measure_cycles=30,
            drain_cycles=120,
            seed=seed,
        )
    )


def _fail(message: str, code: int = 1) -> int:
    print(f"check_service: FAIL - {message}")
    return code


def _drive(client: ServiceClient) -> int:
    """The submit/dedup/leaderboard conversation; 0 on success."""
    client.ping()

    grid = [_tiny_task(1), _tiny_task(2)]
    first = client.submit_tasks("ci-grid", grid, stream="ci-a")
    summary = client.wait(first["job_id"], timeout=STARTUP_TIMEOUT)
    if summary["state"] != "done":
        return _fail(f"first grid ended {summary['state']}")
    if summary["counts"]["simulated"] != 2:
        return _fail(f"expected 2 simulations, got {summary['counts']}")
    print(f"  job {first['job_id']}: 2 tasks simulated")

    again = client.submit_tasks("ci-grid-again", grid, stream="ci-b")
    if not again["deduped"] or again["job_id"] != first["job_id"]:
        return _fail(f"identical grid was not deduped: {again}")
    print(f"  resubmission deduped to {again['job_id']}")

    overlap = client.submit_tasks(
        "ci-overlap", [_tiny_task(2), _tiny_task(3)], stream="ci-b"
    )
    summary = client.wait(overlap["job_id"], timeout=STARTUP_TIMEOUT)
    counts = summary["counts"]
    if summary["state"] != "done" or counts["simulated"] != 1:
        return _fail(f"overlap grid should simulate once, got {counts}")
    if counts["cached"] + counts["shared"] != 1:
        return _fail(f"overlapping task was not deduped: {counts}")
    print(
        f"  overlap job: 1 simulated, 1 "
        f"{'cached' if counts['cached'] else 'shared'}"
    )

    totals = client.ping()["totals"]
    if totals["simulated"] != 3:
        return _fail(f"expected 3 total simulations, got {totals}")

    board = client.leaderboard()
    if "scenario:" not in board["text"]:
        return _fail("leaderboard has no standings after two done jobs")
    print("  leaderboard ingested both jobs")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--keep-state",
        action="store_true",
        help="leave the scratch state dir behind for inspection",
    )
    args = parser.parse_args(argv)

    state_root = tempfile.mkdtemp(prefix="check-service-")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--state-dir",
            state_root,
            "--jobs",
            "1",
        ],
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
    )
    try:
        deadline = time.monotonic() + STARTUP_TIMEOUT
        port = None
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            print(f"  server: {line.rstrip()}")
            match = _LISTENING.search(line)
            if match:
                port = int(match.group(2))
                break
        if port is None:
            proc.kill()
            return _fail("server never reported a listening port", 2)

        client = ServiceClient("127.0.0.1", port, timeout=STARTUP_TIMEOUT)
        code = _drive(client)

        client.shutdown()
        try:
            proc.wait(timeout=SHUTDOWN_TIMEOUT)
        except subprocess.TimeoutExpired:
            proc.kill()
            return _fail("server did not exit after shutdown verb")
        tail = proc.stdout.read()
        if tail:
            for line in tail.rstrip().splitlines():
                print(f"  server: {line}")
        if proc.returncode != 0:
            return _fail(
                f"server exited {proc.returncode} after shutdown"
            )
        if code == 0:
            print("check_service: PASS - dedup held and shutdown was clean")
        return code
    finally:
        if proc.poll() is None:
            proc.kill()
        if not args.keep_state:
            shutil.rmtree(state_root, ignore_errors=True)
        else:
            print(f"  state kept at {state_root}")


if __name__ == "__main__":
    sys.exit(main())
