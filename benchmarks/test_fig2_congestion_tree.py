"""Fig. 2 — congestion-tree case study on a 4x4 mesh with 4 VCs.

Reproduces the motivating example: flows f1..f4 create network congestion
on link n1->n2 and endpoint congestion at n13.  Expected shape (per the
paper's Fig. 2): DOR's endpoint tree has 4 all-VC-thick branches (16 VCs);
fully-adaptive routing spreads congestion to more branches; XORDET keeps
the DOR shape but 1-VC-thin branches; Footprint approaches the ideal —
adaptive paths with branches thinner than fully-adaptive routing.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import fig2_congestion_tree
from repro.harness.reporting import report_fig2

ALGOS = ("dor", "dbar", "dor+xordet", "footprint")


def test_fig2_congestion_tree(benchmark, report):
    results = run_once(
        benchmark,
        lambda: [fig2_congestion_tree(r) for r in ALGOS],
    )
    report(report_fig2(results))

    by_name = {r.routing: r for r in results}
    dor = by_name["dor"].endpoint_tree
    dbar = by_name["dbar"].endpoint_tree
    xordet = by_name["dor+xordet"].endpoint_tree
    footprint = by_name["footprint"].endpoint_tree

    # DOR: thick deterministic tree (the paper counts 4 links x 4 VCs).
    assert dor.max_thickness >= 3
    assert dor.num_branches >= 3
    # XORDET: same deterministic path but one VC per branch.
    assert xordet.max_thickness == 1
    # Adaptive routing spreads over more branches than DOR.
    assert dbar.num_branches >= dor.num_branches
    # Footprint keeps branches thinner than oblivious fully-adaptive.
    assert footprint.mean_thickness <= dbar.mean_thickness
