"""Fig. 5 — latency-throughput, single-flit packets, all seven algorithms.

Regenerates the paper's main latency-throughput comparison on the 8x8
mesh with 10 VCs for uniform random, transpose, and shuffle traffic.
Expected shape: DOR best on uniform random (the pattern self-balances);
adaptive algorithms win on transpose/shuffle; Footprint is the best
adaptive algorithm; XORDET helps DOR little and hurts the adaptive
algorithms on the non-uniform patterns.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import (
    FIG5_ALGORITHMS,
    fig5_latency_throughput,
)
from repro.harness.reporting import report_fig5


def _saturation(curves, label, zero_load):
    curve = next(c for c in curves if c.label == label)
    return curve.saturation_rate(zero_load)


def test_fig5_single_flit(benchmark, report, scale):
    results = run_once(
        benchmark, fig5_latency_throughput, scale, seed=1
    )
    report(report_fig5(results, "Fig. 5 — single-flit packets"))

    for pattern, curves in results.items():
        zero_load = min(
            p.avg_latency for c in curves for p in c.points if p.drained
        )
        sat = {
            label: _saturation(curves, label, zero_load)
            for label in FIG5_ALGORITHMS
        }
        print(f"\nsaturation throughputs ({pattern}): {sat}")

        # Shape assertions; tolerances cover one sweep-grid step at bench
        # scale, where saturation estimates are quantized to the grid.
        if pattern == "uniform":
            # DOR is competitive on uniform random (best or near-best).
            assert sat["dor"] >= sat["oddeven"] - 0.16
        else:
            # Non-uniform patterns: full adaptivity beats deterministic.
            assert sat["footprint"] >= sat["dor"]
            assert sat["dbar"] >= sat["dor"]
        # Footprint is the best (or tied-best) adaptive algorithm.
        assert sat["footprint"] >= sat["oddeven"] - 0.16
