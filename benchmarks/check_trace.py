#!/usr/bin/env python
"""Validate a flit-lifecycle trace file (JSONL or Chrome trace_event).

Structural schema checker for the traces ``repro run --trace-out`` writes.
Checks every record against the event vocabulary of
:mod:`repro.telemetry.trace`:

* the kind is one of ``gen``/``inject``/``va``/``st``/``lt``/``ej``;
* every field the kind requires is present, with sane types (integral
  cycles/nodes/VCs, direction *names*, boolean footprint hits);
* cycles are non-negative and — for JSONL, which preserves recording
  order — non-decreasing;
* packets with both a ``gen`` and an ``ej`` record are created before
  they are ejected.

Exit status: 0 when the trace is valid, 1 on schema violations (each one
printed), 2 when the file cannot be read or parsed at all.

Usage::

    PYTHONPATH=src python benchmarks/check_trace.py TRACE [--min-events N]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

if __name__ == "__main__" and __package__ is None:
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.telemetry.result import EVENT_KINDS
from repro.telemetry.trace import load_trace_records
from repro.topology.ports import Direction

#: Required record fields per kind (beyond the shared kind/cycle pair).
REQUIRED_FIELDS = {
    "gen": ("packet", "src", "dst", "size", "flow"),
    "inject": ("packet", "flit", "node"),
    "va": ("packet", "node", "out_dir", "out_vc", "footprint_hit"),
    "st": ("packet", "flit", "node", "in_dir", "out_dir", "out_vc"),
    "lt": ("packet", "flit", "node", "dir", "vc"),
    "ej": ("packet", "node"),
}

_DIRECTION_FIELDS = {"out_dir", "in_dir", "dir"}
_DIRECTION_NAMES = {d.name for d in Direction}
_INT_FIELDS = {"packet", "flit", "node", "src", "dst", "size", "out_vc", "vc"}


def check_record(index: int, record: dict, errors: list[str]) -> None:
    """Append one message per schema violation in ``record``."""

    def err(message: str) -> None:
        errors.append(f"record {index}: {message}")

    kind = record.get("kind")
    if kind not in EVENT_KINDS:
        err(f"unknown kind {kind!r}")
        return
    cycle = record.get("cycle")
    if not isinstance(cycle, int) or isinstance(cycle, bool) or cycle < 0:
        err(f"{kind}: bad cycle {cycle!r}")
    for name in REQUIRED_FIELDS[kind]:
        if name not in record:
            err(f"{kind}: missing field {name!r}")
            continue
        value = record[name]
        if name in _DIRECTION_FIELDS:
            if value not in _DIRECTION_NAMES:
                err(f"{kind}: bad direction {name}={value!r}")
        elif name == "footprint_hit":
            if not isinstance(value, bool):
                err(f"{kind}: footprint_hit must be a bool, got {value!r}")
        elif name == "flow":
            if not isinstance(value, str):
                err(f"{kind}: flow must be a string, got {value!r}")
        elif name in _INT_FIELDS:
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                err(f"{kind}: bad {name}={value!r}")


def check_trace(
    path: str | Path, min_events: int = 0, max_errors: int = 20
) -> list[str]:
    """All schema violations found in the trace at ``path``."""
    path = Path(path)
    records = load_trace_records(path)
    errors: list[str] = []
    if len(records) < min_events:
        errors.append(
            f"expected at least {min_events} events, found {len(records)}"
        )
    ordered = path.suffix == ".jsonl"
    last_cycle = 0
    born: dict[int, int] = {}
    for index, record in enumerate(records):
        check_record(index, record, errors)
        if len(errors) >= max_errors:
            errors.append("... (further checks suppressed)")
            return errors
        cycle = record.get("cycle")
        if not isinstance(cycle, int):
            continue
        if ordered and cycle < last_cycle:
            errors.append(
                f"record {index}: cycle {cycle} precedes cycle {last_cycle}"
            )
        last_cycle = max(last_cycle, cycle)
        kind = record.get("kind")
        packet = record.get("packet")
        if kind == "gen" and isinstance(packet, int):
            born[packet] = cycle
        elif kind == "ej" and packet in born and cycle < born[packet]:
            errors.append(
                f"record {index}: packet {packet} ejected at cycle {cycle} "
                f"before its creation at {born[packet]}"
            )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace file (.jsonl or Chrome .json)")
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        metavar="N",
        help="fail unless the trace holds at least N events (default: 1)",
    )
    args = parser.parse_args(argv)
    try:
        errors = check_trace(args.trace, min_events=args.min_events)
    except (OSError, json.JSONDecodeError, KeyError, ValueError) as exc:
        print(f"check_trace: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2
    if errors:
        for message in errors:
            print(f"check_trace: {message}", file=sys.stderr)
        print(
            f"check_trace: {args.trace}: {len(errors)} violation(s)",
            file=sys.stderr,
        )
        return 1
    records = load_trace_records(args.trace)
    print(f"check_trace: {args.trace}: {len(records)} events, schema OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
