"""Benchmark-suite configuration.

Every benchmark regenerates one table or figure of the paper and prints
the same rows/series the paper reports.  The simulated scale is
controlled by the ``REPRO_SCALE`` environment variable
(``smoke``/``bench``/``paper``); the default ``bench`` scale keeps each
figure within a few minutes while preserving the qualitative shape.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib
import sys

import pytest

from repro.harness.experiments import BENCH, Scale, scale_from_env

#: Rendered figure tables are appended here (pytest captures stdout of
#: passing tests, so the tables would otherwise be invisible).
RESULTS_FILE = pathlib.Path(__file__).resolve().parent.parent / "bench_results.txt"


@pytest.fixture(scope="session")
def scale() -> Scale:
    return scale_from_env(BENCH)


@pytest.fixture
def report(request):
    """Record a rendered figure table: stderr + bench_results.txt."""

    def _report(text: str) -> None:
        print(file=sys.stderr)
        print(text, file=sys.stderr)
        with RESULTS_FILE.open("a") as fh:
            fh.write(f"\n===== {request.node.name} =====\n{text}\n")

    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark.

    Experiment drivers simulate millions of router-cycles; repeating them
    for statistical timing would multiply hours, so each figure runs a
    single round and the benchmark time records the figure's cost.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
